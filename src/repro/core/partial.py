"""Register-constrained retiming.

Theorem 4.3 needs one conditional register per *distinct retiming value*;
total prologue/epilogue removal is impossible with fewer, because each value
class requires its own predicate window.  When the target machine has only
``P < |N_r|`` conditional registers, the right lever is therefore the
retiming itself: find a legal retiming with **at most ``P`` distinct
values** and the best cycle period that allows — the "maximum performance
when the number of conditional registers are limited" exploration the
paper's conclusion calls for.

The search strategy: for each candidate period ``c`` (ascending from the
unconstrained optimum), take the optimal retiming ``r*`` for ``c``, quantize
its values to ``P`` levels (quantile-based), and re-solve the retiming
constraint system with nodes of a level forced equal (equalities are just
paired difference constraints).  The identity retiming (1 distinct value,
period ``Phi(G)``) guarantees termination.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.dfg import DFG, DFGError
from ..graph.period import cycle_period
from ..graph.wd import wd_matrices
from ..retiming.constraints import DifferenceConstraints
from ..retiming.function import Retiming
from ..retiming.optimal import minimize_cycle_period, retime_for_period

__all__ = [
    "RegisterConstrainedResult",
    "limit_registers",
    "minimize_registers_for_unfold",
]


@dataclass(frozen=True)
class RegisterConstrainedResult:
    """A retiming honouring a conditional-register budget.

    ``period`` is the achieved cycle period; ``unconstrained_period`` the
    optimum without the register budget, so ``period -
    unconstrained_period`` is the performance price of the budget.
    """

    retiming: Retiming
    period: int
    registers: int
    unconstrained_period: int


def _quantize_levels(values: list[int], p: int) -> list[int]:
    """At most ``p`` representative levels covering ``values`` (quantiles)."""
    distinct = sorted(set(values))
    if len(distinct) <= p:
        return distinct
    levels = []
    for k in range(p):
        levels.append(distinct[k * (len(distinct) - 1) // (p - 1)] if p > 1 else distinct[0])
    return sorted(set(levels))


def _solve_with_groups(g: DFG, c: int, groups: dict[str, int]) -> Retiming | None:
    """Optimal-retiming constraint system for period ``c`` plus equality of
    all nodes sharing a group id; ``None`` if infeasible."""
    W, D = wd_matrices(g)
    system = DifferenceConstraints()
    for n in g.node_names():
        system.add_variable(n)
    for e in g.edges():
        system.add(e.dst, e.src, e.delay)
    for (u, v), d_val in D.items():
        if d_val > c:
            system.add(v, u, W[(u, v)] - 1)
    # Force equality within groups: chain each group's members pairwise.
    by_group: dict[int, list[str]] = {}
    for node, gid in groups.items():
        by_group.setdefault(gid, []).append(node)
    for members in by_group.values():
        for a, b in zip(members, members[1:]):
            system.add(a, b, 0)
            system.add(b, a, 0)
    solution = system.solve()
    if solution is None:
        return None
    r = Retiming(g, {n: int(v) for n, v in solution.items()}).normalized()
    if cycle_period(r.apply()) > c:
        return None
    return r


def limit_registers(g: DFG, max_registers: int, max_period: int | None = None) -> RegisterConstrainedResult:
    """Best-effort retiming of ``g`` using at most ``max_registers``
    distinct retiming values.

    Scans periods from the unconstrained optimum up to ``max_period``
    (default: the original cycle period, where the identity retiming always
    succeeds) and returns the first period at which a ``<= max_registers``
    retiming is found.
    """
    if max_registers < 1:
        raise DFGError(f"need at least one register, got {max_registers}")
    best_c, best_r = minimize_cycle_period(g)
    if best_r.registers_needed() <= max_registers:
        return RegisterConstrainedResult(
            retiming=best_r,
            period=best_c,
            registers=best_r.registers_needed(),
            unconstrained_period=best_c,
        )

    ceiling = max_period if max_period is not None else cycle_period(g)
    for c in range(best_c, ceiling + 1):
        r_star = retime_for_period(g, c)
        if r_star is None:
            continue
        if r_star.registers_needed() <= max_registers:
            return RegisterConstrainedResult(
                retiming=r_star,
                period=cycle_period(r_star.apply()),
                registers=r_star.registers_needed(),
                unconstrained_period=best_c,
            )
        levels = _quantize_levels(list(r_star.as_dict().values()), max_registers)
        groups = {
            node: min(range(len(levels)), key=lambda k: abs(levels[k] - val))
            for node, val in r_star.items()
        }
        r = _solve_with_groups(g, c, groups)
        if r is not None and r.registers_needed() <= max_registers:
            return RegisterConstrainedResult(
                retiming=r,
                period=cycle_period(r.apply()),
                registers=r.registers_needed(),
                unconstrained_period=best_c,
            )
    # Identity retiming: one value, original period — always legal.
    r0 = Retiming.zero(g)
    return RegisterConstrainedResult(
        retiming=r0,
        period=cycle_period(g),
        registers=1,
        unconstrained_period=best_c,
    )


def _partitions_into_at_most(items: list[str], k: int):
    """All set partitions of ``items`` into at most ``k`` blocks
    (restricted-growth-string enumeration; intended for small graphs)."""

    def rec(idx: int, blocks: list[list[str]]):
        if idx == len(items):
            yield [list(b) for b in blocks]
            return
        item = items[idx]
        for b in blocks:
            b.append(item)
            yield from rec(idx + 1, blocks)
            b.pop()
        if len(blocks) < k:
            blocks.append([item])
            yield from rec(idx + 1, blocks)
            blocks.pop()

    yield from rec(0, [])


def _solve_unfold_grouped(
    g: DFG, f: int, c: int, groups: dict[str, int]
) -> Retiming | None:
    """Retiming with ``Phi(unfold(G_r, f)) <= c`` and all nodes of a group
    forced to equal retiming values; ``None`` if infeasible."""
    from ..graph.period import cycle_period as _phi
    from ..unfolding.orders import min_delay_exceeding_time
    from ..unfolding.unfold import unfold

    system = DifferenceConstraints()
    for n in g.node_names():
        system.add_variable(n)
    for e in g.edges():
        system.add(e.dst, e.src, e.delay)
    for (u, v), w in min_delay_exceeding_time(g, c).items():
        system.add(v, u, w - f)
    by_group: dict[int, list[str]] = {}
    for node, gid in groups.items():
        by_group.setdefault(gid, []).append(node)
    for members in by_group.values():
        for a, b in zip(members, members[1:]):
            system.add(a, b, 0)
            system.add(b, a, 0)
    solution = system.solve()
    if solution is None:
        return None
    r = Retiming(g, {n: int(v) for n, v in solution.items()}).normalized()
    if _phi(unfold(r.apply(), f)) > c:  # pragma: no cover - defensive
        return None
    return r


def minimize_registers_for_unfold(
    g: DFG, f: int, c: int, exhaustive_limit: int = 7
) -> Retiming | None:
    """A retiming with ``Phi(unfold(G_r, f)) <= c`` using as few distinct
    retiming values (conditional registers) as found.

    For graphs with at most ``exhaustive_limit`` nodes, all node partitions
    into ``k`` equal-value groups are tried for increasing ``k`` — the
    returned retiming then has the provably minimum register count for this
    constraint formulation.  Larger graphs fall back to quantile grouping of
    the unconstrained optimum (a heuristic upper bound).  Returns ``None``
    when the period itself is infeasible.
    """
    from ..unfolding.orders import retime_unfold_for_period

    baseline = retime_unfold_for_period(g, f, c)
    if baseline is None:
        return None
    best = baseline
    names = g.node_names()
    if len(names) <= exhaustive_limit:
        for k in range(1, baseline.registers_needed()):
            found = None
            for blocks in _partitions_into_at_most(names, k):
                groups = {n: i for i, block in enumerate(blocks) for n in block}
                r = _solve_unfold_grouped(g, f, c, groups)
                if r is not None and r.registers_needed() <= k:
                    found = r
                    break
            if found is not None:
                return found
        return best
    # Heuristic path: quantize the baseline's values to k levels.
    values = list(baseline.as_dict().values())
    for k in range(1, baseline.registers_needed()):
        levels = _quantize_levels(values, k)
        groups = {
            node: min(range(len(levels)), key=lambda i: abs(levels[i] - val))
            for node, val in baseline.items()
        }
        r = _solve_unfold_grouped(g, f, c, groups)
        if r is not None and r.registers_needed() < best.registers_needed():
            return r
    return best
