"""Code-size reduction for software-pipelined (retimed) loops.

Implements Section 3.2 / Theorems 4.1–4.3: the prologue and epilogue of a
pipelined loop are removed *completely* by conditionally executing the loop
body for ``n + M_r`` iterations, with one conditional register per distinct
retiming value.  Node ``v`` is guarded by the register of class ``r(v)``,
initialized to ``M_r - r(v)`` and decremented every iteration — so ``v``
starts executing at iteration ``1 - r(v)`` (covering the prologue) and stops
after instance ``n`` (covering the epilogue).

Resulting code size: ``|V| + 2 * |N_r|`` (body + one setup and one
decrement per register) versus ``(M_r + 1) * |V|`` for the plain pipelined
program — Table 1's "CR" column.
"""

from __future__ import annotations

from ..graph.dfg import DFG
from ..graph.validate import topological_order
from ..codegen.ir import LoopProgram
from ..observability import count, span
from ..retiming.function import Retiming
from .predicated import PER_ITERATION, predicated_program

__all__ = ["csr_pipelined_loop"]


def csr_pipelined_loop(g: DFG, r: Retiming) -> LoopProgram:
    """The conditional-register form of the pipelined loop for retiming ``r``.

    Unlike :func:`repro.codegen.pipelined_loop`, the result runs correctly
    for *every* trip count ``n >= 0`` — guards simply disable everything
    out of range, so even ``n < M_r`` needs no special casing.
    """
    count("csr.programs")
    with span("csr.rewrite", graph=g.name, nodes=g.num_nodes):
        r = r.normalized()
        r.check_legal()
        order = [(v, 0) for v in topological_order(r.apply())]
        shifts = {(v, 0): r[v] for v in g.node_names()}
        return predicated_program(
            g,
            f=1,
            shifts=shifts,
            body_order=order,
            mode=PER_ITERATION,
            name=f"{g.name}.csr_pipelined",
            meta={
                "kind": "csr-pipelined",
                "retiming": r.as_dict(),
                "max_retiming": r.max_value,
            },
        )
