"""The paper's primary contribution: the code-size reduction framework.

Conditional-register code generation for retimed loops (Theorems 4.1–4.3),
unfolded loops (Section 3.3), and retimed-unfolded loops in both orders
(Theorems 4.6/4.7); the closed-form code-size models of Theorems 4.4/4.5;
semantic verification by execution; register-constrained retiming; and the
code-size/performance trade-off explorer.
"""

from .codesize import (
    CodeSizeReport,
    remainder_iterations,
    report_retimed,
    report_retimed_unfolded,
    size_csr_pipelined,
    size_csr_retime_unfold,
    size_csr_unfold_retime,
    size_csr_unfolded,
    size_original,
    size_pipelined,
    size_retime_unfold,
    size_unfold_retime,
    size_unfolded,
)
from .combined_csr import csr_retimed_unfolded_loop, csr_unfold_retimed_loop
from .csr import csr_pipelined_loop
from .partial import RegisterConstrainedResult, limit_registers
from .predicated import PER_COPY, PER_ITERATION, predicated_program
from .tradeoff import (
    TradeoffPoint,
    best_under_budget,
    design_space,
    max_retiming_depth,
    max_unfolding_factor,
)
from .unfolded_csr import csr_unfolded_loop
from .verify import EquivalenceError, assert_equivalent, equivalent, reference_result

__all__ = [
    "CodeSizeReport",
    "remainder_iterations",
    "report_retimed",
    "report_retimed_unfolded",
    "size_csr_pipelined",
    "size_csr_retime_unfold",
    "size_csr_unfold_retime",
    "size_csr_unfolded",
    "size_original",
    "size_pipelined",
    "size_retime_unfold",
    "size_unfold_retime",
    "size_unfolded",
    "csr_retimed_unfolded_loop",
    "csr_unfold_retimed_loop",
    "csr_pipelined_loop",
    "RegisterConstrainedResult",
    "limit_registers",
    "PER_COPY",
    "PER_ITERATION",
    "predicated_program",
    "TradeoffPoint",
    "best_under_budget",
    "design_space",
    "max_retiming_depth",
    "max_unfolding_factor",
    "csr_unfolded_loop",
    "EquivalenceError",
    "assert_equivalent",
    "equivalent",
    "reference_result",
]
