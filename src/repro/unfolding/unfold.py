"""The unfolding (loop unrolling at the DFG level) transformation.

Unfolding a DFG ``G`` by factor ``f`` produces ``G_f`` in which every node
``u`` is replicated into copies ``u#0 .. u#{f-1}``; copy ``j`` computes the
loop instances congruent to ``j`` (copy ``j`` at outer iteration ``k``
computes instance ``k*f + j`` of ``u``, counting instances from the same
origin as the outer iterations).

For an edge ``e(u -> v)`` with delay ``d``, the consumer copy ``v#j``
reads instance ``(k*f + j) - d``, which is produced by copy
``u#((j - d) mod f)`` exactly ``ceil((d - j) / f)`` outer iterations
earlier.  Hence ``G_f`` has, for each ``j in 0..f-1``, the edge::

    u#((j - d) mod f)  ->  v#j     with delay ceil((d - j) / f)

This is the classical Chao–Sha / Parhi unfolding rule; it preserves the
total delay count per original edge (``sum_j ceil((d - j)/f) = d``) and
multiplies the iteration bound by ``f`` (so the bound on the iteration
*period* ``Phi(G_f)/f`` is unchanged).
"""

from __future__ import annotations

from ..graph.dfg import DFG, DFGError
from ..observability import OBS, span

__all__ = ["unfold", "copy_name", "parse_copy_name", "unfolded_edge_delay"]

_SEP = "#"


def copy_name(node: str, j: int) -> str:
    """Name of copy ``j`` of ``node`` in an unfolded graph."""
    return f"{node}{_SEP}{j}"


def parse_copy_name(name: str) -> tuple[str, int]:
    """Inverse of :func:`copy_name`: ``("u#2") -> ("u", 2)``.

    Raises :class:`DFGError` for names that are not unfolded-copy names.
    """
    base, sep, idx = name.rpartition(_SEP)
    if not sep or not idx.isdigit():
        raise DFGError(f"{name!r} is not an unfolded-copy name")
    return base, int(idx)


def unfolded_edge_delay(d: int, j: int, f: int) -> int:
    """Delay of the copy-``j`` instance of an edge with original delay ``d``
    when unfolding by ``f``: ``ceil((d - j) / f)``."""
    return -((j - d) // f)


def unfold(g: DFG, f: int, name: str | None = None) -> DFG:
    """The unfolded graph ``G_f``.

    ``f = 1`` returns a renamed copy (every node becomes ``u#0``) so that
    downstream code can treat all factors uniformly.
    """
    if f < 1:
        raise DFGError(f"unfolding factor must be >= 1, got {f}")
    with span("unfold", graph=g.name, factor=f):
        gf = DFG(name if name is not None else f"{g.name}_x{f}")
        for node in g.nodes():
            for j in range(f):
                gf.add_node(
                    copy_name(node.name, j), time=node.time, op=node.op, imm=node.imm
                )
        for e in g.edges():
            for j in range(f):
                src_copy = (j - e.delay) % f
                gf.add_edge(
                    copy_name(e.src, src_copy),
                    copy_name(e.dst, j),
                    delay=unfolded_edge_delay(e.delay, j, f),
                )
    if OBS.enabled:
        m = OBS.metrics
        m.counter("unfold.calls", "unfolding transformations applied").inc()
        m.counter("unfold.copies", "node copies created by unfolding").inc(
            g.num_nodes * f
        )
    return gf
