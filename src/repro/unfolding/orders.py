"""Combining retiming and unfolding, in both orders.

The paper (Theorems 4.4/4.5, Tables 3/4) compares two pipelines:

* **unfold-retime** (``G -> G_f -> retime``): unfold first, then run optimal
  retiming on the unfolded graph.  Straightforward — but every copy of a
  node may receive a distinct retiming value, which multiplies code size.
* **retime-unfold** (``G -> G_r -> unfold``): find a retiming of the
  *original* graph such that unfolding the retimed graph achieves the target
  cycle period.  Per Chao & Sha [JVSP 1995] the best achievable period is the
  same, while the paper shows the code size is never worse
  (``S_{r,f} <= S_{f,r}``).

The retime-unfold optimizer here is *exact*, based on the following
characterization proved by unwinding the unfolding rule: a walk ``p`` from
``u`` to ``v`` in the retimed graph ``G_r`` survives as a zero-delay path of
``unfold(G_r, f)`` iff its total retimed delay satisfies ``d_r(p) <= f - 1``.
Hence ``Phi(unfold(G_r, f)) <= c`` iff every walk with computation time
``> c`` keeps at least ``f`` delays::

    d(p) + r(u) - r(v) >= f      for every u->v walk p with T(p) > c

which is a system of difference constraints ``r(v) - r(u) <= W_c(u,v) - f``
with ``W_c(u,v) = min { d(p) : T(p) > c }`` — computable by a per-source
Dijkstra over ``(node, saturated-time)`` states.  For ``f = 1`` this
degenerates to (an exact form of) the Leiserson–Saxe condition, which the
test-suite exploits as a cross-check.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from fractions import Fraction

from ..graph.dfg import DFG, DFGError
from ..graph.iteration_bound import iteration_bound
from ..graph.period import cycle_period
from ..retiming.constraints import DifferenceConstraints
from ..retiming.function import Retiming
from ..retiming.optimal import minimize_cycle_period, retime_for_period
from .unfold import unfold

__all__ = [
    "OrderedResult",
    "unfold_retime",
    "retime_unfold",
    "retime_unfold_for_period",
    "min_delay_exceeding_time",
]


@dataclass(frozen=True)
class OrderedResult:
    """Result of one retiming+unfolding pipeline.

    Attributes
    ----------
    order:
        ``"retime-unfold"`` or ``"unfold-retime"``.
    factor:
        The unfolding factor ``f``.
    retiming:
        The normalized retiming used — over the *original* nodes for
        retime-unfold, over the *unfolded copies* for unfold-retime.
    graph:
        The final transformed graph (always an unfolded graph whose body
        represents ``f`` original iterations).
    period:
        Cycle period of ``graph`` (schedule length of one unfolded body).
    iteration_period:
        ``period / f`` — average time per *original* iteration.
    """

    order: str
    factor: int
    retiming: Retiming
    graph: DFG
    period: int
    iteration_period: Fraction


def unfold_retime(g: DFG, f: int, period: int | None = None) -> OrderedResult:
    """Unfold ``g`` by ``f`` and then retime the unfolded graph.

    With ``period`` given, finds a retiming of ``G_f`` achieving that cycle
    period (raising :class:`DFGError` if impossible); otherwise minimizes.
    """
    gf = unfold(g, f)
    if period is None:
        achieved, r = minimize_cycle_period(gf)
    else:
        r_opt = retime_for_period(gf, period)
        if r_opt is None:
            raise DFGError(f"{g.name}: unfold-retime cannot reach period {period} at f={f}")
        r = r_opt
        achieved = cycle_period(r.apply())
    return OrderedResult(
        order="unfold-retime",
        factor=f,
        retiming=r,
        graph=r.apply(),
        period=achieved,
        iteration_period=Fraction(achieved, f),
    )


def min_delay_exceeding_time(g: DFG, c: int) -> dict[tuple[str, str], int]:
    """``W_c(u, v) = min { d(p) : walks p from u to v with T(p) > c }``.

    Walk time counts every node visit (including both endpoints once per
    visit).  Pairs with no such walk are absent from the result.  Runs one
    Dijkstra per source over ``(node, min(T, c+1))`` states; legal graphs
    have no zero-delay cycles, so delays strictly increase around any cycle
    and the search terminates.
    """
    cap = c + 1  # saturated time: reaching `cap` means T > c
    names = g.node_names()
    out_edges = {n: g.out_edges(n) for n in names}
    times = {n: g.node(n).time for n in names}
    result: dict[tuple[str, str], int] = {}

    for source in names:
        # dist[(v, tau)] = min walk delay from source to v with saturated
        # accumulated time tau.
        start_tau = min(times[source], cap)
        dist: dict[tuple[str, int], int] = {(source, start_tau): 0}
        heap: list[tuple[int, str, int]] = [(0, source, start_tau)]
        best_at_cap: dict[str, int] = {}
        while heap:
            d, v, tau = heapq.heappop(heap)
            if dist.get((v, tau), math.inf) < d:
                continue
            if tau == cap:
                # Saturated: record and keep exploring only if cheaper
                # saturated walks to successors may exist (they do: continue
                # relaxing from saturated states too).
                if d < best_at_cap.get(v, math.inf):
                    best_at_cap[v] = d
            for e in out_edges[v]:
                ntau = min(tau + times[e.dst], cap)
                nd = d + e.delay
                key = (e.dst, ntau)
                if nd < dist.get(key, math.inf):
                    dist[key] = nd
                    heapq.heappush(heap, (nd, e.dst, ntau))
        for v, d in best_at_cap.items():
            result[(source, v)] = d
    return result


def retime_unfold_for_period(g: DFG, f: int, c: int) -> Retiming | None:
    """A normalized retiming ``r`` of ``g`` with
    ``Phi(unfold(G_r, f)) <= c``, or ``None`` if none exists."""
    if f < 1:
        raise DFGError(f"unfolding factor must be >= 1, got {f}")
    if any(v.time > c for v in g.nodes()):
        return None
    wc = min_delay_exceeding_time(g, c)
    system = DifferenceConstraints()
    for n in g.node_names():
        system.add_variable(n)
    for e in g.edges():
        system.add(e.dst, e.src, e.delay)
    for (u, v), w in wc.items():
        system.add(v, u, w - f)
    solution = system.solve()
    if solution is None:
        return None
    r = Retiming(g, {n: int(val) for n, val in solution.items()}).normalized()
    retimed = r.apply()
    assert cycle_period(unfold(retimed, f)) <= c, "internal error: W_c reduction violated"
    return r


def retime_unfold(g: DFG, f: int, period: int | None = None) -> OrderedResult:
    """Retime ``g`` first, then unfold by ``f`` (the code-size-friendly order).

    With ``period`` given, finds a retiming whose unfolded graph achieves
    that cycle period (raising :class:`DFGError` if impossible); otherwise
    minimizes the unfolded cycle period exactly by binary search.
    """
    if period is not None:
        r = retime_unfold_for_period(g, f, period)
        if r is None:
            raise DFGError(f"{g.name}: retime-unfold cannot reach period {period} at f={f}")
    else:
        bound = iteration_bound(g)
        lo = max(
            max(v.time for v in g.nodes()),
            math.ceil(bound * f) if bound > 0 else 1,
        )
        # Upper bound: unfold the LS-optimal retiming of g.
        _, r0 = minimize_cycle_period(g)
        hi = cycle_period(unfold(r0.apply(), f))
        best: Retiming | None = None
        while lo <= hi:
            mid = (lo + hi) // 2
            cand = retime_unfold_for_period(g, f, mid)
            if cand is not None:
                best = cand
                hi = mid - 1
            else:
                lo = mid + 1
        if best is None:
            # lo exceeded hi without success: r0 itself is the witness for hi.
            best = r0
        r = best
    final = unfold(r.apply(), f)
    achieved = cycle_period(final)
    return OrderedResult(
        order="retime-unfold",
        factor=f,
        retiming=r,
        graph=final,
        period=achieved,
        iteration_period=Fraction(achieved, f),
    )
