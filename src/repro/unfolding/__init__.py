"""Unfolding engine: the ``G -> G_f`` transformation and order pipelines.

Implements Section 2.2's unfolding (Chao–Sha delay-distribution rule) plus
the two composition orders compared in Section 4 — retime-then-unfold and
unfold-then-retime — including an exact optimizer for the retime-first
order.
"""

from .orders import (
    OrderedResult,
    min_delay_exceeding_time,
    retime_unfold,
    retime_unfold_for_period,
    unfold_retime,
)
from .unfold import copy_name, parse_copy_name, unfold, unfolded_edge_delay

__all__ = [
    "OrderedResult",
    "min_delay_exceeding_time",
    "retime_unfold",
    "retime_unfold_for_period",
    "unfold_retime",
    "copy_name",
    "parse_copy_name",
    "unfold",
    "unfolded_edge_delay",
]
