"""Front-end: parse paper-style loop source into data-flow graphs."""

from .parser import ParseError, parse_loop

__all__ = ["ParseError", "parse_loop"]
