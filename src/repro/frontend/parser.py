"""A tiny front-end: parse paper-style loop source into a data-flow graph.

The paper writes loops as indexed-array statements::

    A[i] = E[i-4] + 9
    B[i] = A[i] * 5
    C[i] = A[i] + B[i-2]
    D[i] = A[i] * C[i]
    E[i] = D[i] + 30

:func:`parse_loop` turns that text (one statement per line; ``#`` or ``//``
comments; blank lines ignored) into a :class:`~repro.graph.DFG`: one node
per statement, one edge per array reference, edge delay = the reference's
backward offset.  Supported right-hand-side shapes map onto the executable
:class:`~repro.graph.OpKind` semantics:

=========================================  ==========================
shape                                      node
=========================================  ==========================
``r1 + r2 + ... + const``                  ``ADD`` (imm = const sum)
``r1 * r2 * ... * const``                  ``MUL`` (imm = const product)
``r1 - r2 - ... - const``                  ``SUB`` (imm = -const sum)
``r1 * r2 + r3 + ... + const``             ``MAC``
``r1``  /  ``r1 + const``                  ``COPY``
``input(const)``                           ``SOURCE``
=========================================  ==========================

where each ``r`` is a reference ``NAME[i]`` or ``NAME[i-k]`` (``k >= 0``;
forward references ``[i+k]`` are rejected — they would be negative delays).
Every array must be assigned exactly once (one node per name); references
to never-assigned arrays are rejected with a precise message.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..graph.dfg import DFG, DFGError, OpKind

__all__ = ["parse_loop", "ParseError"]


class ParseError(DFGError):
    """Raised with line number and reason for malformed loop source."""


_REF = re.compile(r"^([A-Za-z_]\w*)\s*\[\s*i\s*(?:([+-])\s*(\d+)\s*)?\]$")
_INPUT = re.compile(r"^input\s*\(\s*(-?\d+)\s*\)$")


@dataclass(frozen=True)
class _Ref:
    array: str
    delay: int


def _parse_term(term: str, lineno: int):
    """A term is an array reference, an integer literal, or input(k)."""
    term = term.strip()
    m = _REF.match(term)
    if m:
        name, sign, off = m.groups()
        delay = int(off or 0)
        if sign == "+" and delay > 0:
            raise ParseError(
                f"line {lineno}: forward reference {term!r} would be a negative delay"
            )
        return _Ref(name, delay)
    if re.fullmatch(r"-?\d+", term):
        return int(term)
    raise ParseError(f"line {lineno}: cannot parse term {term!r}")


def _split_terms(expr: str, lineno: int) -> list[tuple[str, str]]:
    """Split ``expr`` into (operator, term) pairs; first operator is '+'.

    Only top-level ``+``, ``-`` and ``*`` are supported (no parentheses —
    the paper's loop bodies are three-address-ish already).  A sign with no
    accumulated term to its left is treated as part of the term (unary
    minus in constants like ``+ -2``).
    """
    out: list[tuple[str, str]] = []
    op = "+"
    buf: list[str] = []
    depth = 0
    for ch in expr:
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        if depth == 0 and ch in "+-*":
            prev = "".join(buf).strip()
            if prev:
                out.append((op, prev))
                op = ch
                buf = []
                continue
        buf.append(ch)
    tail = "".join(buf).strip()
    if not tail:
        raise ParseError(f"line {lineno}: dangling operator in {expr!r}")
    out.append((op, tail))
    return out


@dataclass(frozen=True)
class _Statement:
    dest: str
    op: OpKind
    imm: int
    refs: tuple[_Ref, ...]
    lineno: int


def _classify(pairs, lineno: int) -> tuple[OpKind, int, tuple[_Ref, ...]]:
    """Map parsed (operator, term) pairs onto an OpKind + imm + refs."""
    if len(pairs) == 1:
        m = _INPUT.match(pairs[0][1].strip())
        if m:
            return OpKind.SOURCE, int(m.group(1)), ()

    terms = [(op, _parse_term(t, lineno)) for op, t in pairs]
    ops = [op for op, _ in terms[1:]]
    refs = [t for _, t in terms if isinstance(t, _Ref)]
    consts = [t for _, t in terms if isinstance(t, int)]

    all_plus = all(op == "+" for op in ops)
    all_star = all(op == "*" for op in ops)

    # r1 * r2 + rest  ->  MAC (needs at least one additive tail term;
    # a bare product stays a MUL below)
    if len(ops) >= 2 and ops[0] == "*" and all(o == "+" for o in ops[1:]) and len(refs) >= 2:
        star_terms = terms[:2]
        if all(isinstance(t, _Ref) for _, t in star_terms):
            imm = sum(c for c in consts)
            return OpKind.MAC, imm, tuple(refs)

    if all_star and ops:
        if not refs:
            raise ParseError(f"line {lineno}: constant-only product")
        imm = 1
        for c in consts:
            imm *= c
        return OpKind.MUL, imm, tuple(refs)

    if all_plus:
        if not refs:
            raise ParseError(f"line {lineno}: constant-only expression")
        imm = sum(consts)
        if len(refs) == 1 and not consts:
            return OpKind.COPY, imm, tuple(refs)
        return OpKind.ADD, imm, tuple(refs)

    # subtraction chain: r1 - r2 - ... - const
    if ops and all(op == "-" for op in ops):
        if not refs or not isinstance(terms[0][1], _Ref):
            raise ParseError(f"line {lineno}: subtraction must start from a reference")
        imm = -sum(consts)
        return OpKind.SUB, imm, tuple(refs)

    raise ParseError(
        f"line {lineno}: unsupported expression shape (ops {ops!r}); see "
        f"repro.frontend.parser for the supported forms"
    )


def _parse_statement(line: str, lineno: int) -> _Statement:
    if "=" not in line:
        raise ParseError(f"line {lineno}: expected 'DEST[i] = expr', got {line!r}")
    lhs, rhs = line.split("=", 1)
    m = _REF.match(lhs.strip())
    if not m or (m.group(3) and int(m.group(3)) != 0):
        raise ParseError(
            f"line {lineno}: left-hand side must be 'NAME[i]', got {lhs.strip()!r}"
        )
    dest = m.group(1)
    pairs = _split_terms(rhs.strip(), lineno)
    op, imm, refs = _classify(pairs, lineno)
    return _Statement(dest=dest, op=op, imm=imm, refs=refs, lineno=lineno)


def parse_loop(source: str, name: str = "loop") -> DFG:
    """Parse paper-style loop source into a validated :class:`DFG`.

    Statement order in the source is preserved as node insertion order
    (and therefore as operand order and topological tie-breaking).
    """
    statements: list[_Statement] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split("//", 1)[0].strip().rstrip(";")
        if not line:
            continue
        statements.append(_parse_statement(line, lineno))

    g = DFG(name)
    seen: dict[str, int] = {}
    for st in statements:
        if st.dest in seen:
            raise ParseError(
                f"line {st.lineno}: {st.dest!r} already assigned on line {seen[st.dest]}"
            )
        seen[st.dest] = st.lineno
        g.add_node(st.dest, op=st.op, imm=st.imm)
    for st in statements:
        for ref in st.refs:
            if ref.array not in seen:
                raise ParseError(
                    f"line {st.lineno}: reference to {ref.array!r}, which is "
                    f"never assigned in this loop"
                )
            g.add_edge(ref.array, st.dest, delay=ref.delay)

    from ..graph.validate import validate

    validate(g)
    return g
