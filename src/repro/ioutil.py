"""Crash-safe file-writing primitives shared across the library.

Every artifact a run leaves behind — JSON reports, metrics exports,
Chrome traces — must survive the writer dying mid-store: an interrupted
run may be resumed, and a truncated report is worse than none.  The
pattern is the same one :class:`repro.runner.cache.ResultCache` uses for
entries: write the full content to a temp file in the destination
directory, then move it over the final path with one atomic
``os.replace``.  A reader (or a post-crash inspection) therefore sees
either the complete old content or the complete new content, never a
torn file.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: Path | str, text: str, fsync: bool = False) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    With ``fsync`` the bytes are flushed to stable storage before the
    rename, so even a machine crash cannot leave a new-name/old-content
    window.  The temp file is unlinked on any failure — an interrupted
    write leaves the previous content (or no file) behind, never a
    truncated one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
