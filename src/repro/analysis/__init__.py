"""Experiment drivers and reporting for the paper's evaluation tables."""

from .experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    OrderComparison,
    Table1Row,
    Table2Row,
    format_order_comparison,
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
    table3_comparison,
    table4_comparison,
)
from .tables import format_gap_table, format_table

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "OrderComparison",
    "Table1Row",
    "Table2Row",
    "format_order_comparison",
    "format_table1",
    "format_table2",
    "table1_rows",
    "table2_rows",
    "table3_comparison",
    "table4_comparison",
    "format_table",
    "format_gap_table",
]
