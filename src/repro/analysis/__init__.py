"""Experiment drivers and reporting for the paper's evaluation tables."""

from .experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    TABLE_TITLES,
    OrderComparison,
    Table1Row,
    Table2Row,
    format_order_comparison,
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
    table3_comparison,
    table4_comparison,
)
from .frames import Frame, bootstrap_ci
from .tables import (
    FailedCell,
    format_gap_table,
    format_latex_table,
    format_markdown_table,
    format_table,
    latex_escape,
)

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "TABLE_TITLES",
    "FailedCell",
    "Frame",
    "OrderComparison",
    "Table1Row",
    "Table2Row",
    "bootstrap_ci",
    "format_order_comparison",
    "format_table1",
    "format_table2",
    "table1_rows",
    "table2_rows",
    "table3_comparison",
    "table4_comparison",
    "format_table",
    "format_gap_table",
    "format_latex_table",
    "format_markdown_table",
    "latex_escape",
]
