"""Experiment drivers that regenerate every table of the paper.

Each ``tableN_rows`` function computes the measured quantities from first
principles (optimal retiming, exact order comparison, code-size models
validated against generated programs) and pairs them with the paper's
published numbers, so the benchmark harness and EXPERIMENTS.md print both
side by side.  The benchmark files under ``benchmarks/`` are thin wrappers
around these drivers.

Every driver accepts an optional
:class:`~repro.runner.engine.ExperimentEngine`: with one, each row is a
content-addressed unit of work — cached on disk and fanned across the
engine's process pool — and the measured numbers are reconstructed from
the JSON payload.  The payload functions (``_table1_payload`` etc.) are
the single source of truth for both paths, so engine-driven tables are
byte-identical to direct ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING

from ..core.codesize import (
    size_csr_pipelined,
    size_csr_retime_unfold,
    size_original,
    size_pipelined,
    size_retime_unfold,
    size_unfold_retime,
)
from ..core.predicated import PER_COPY, PER_ITERATION
from ..graph.dfg import DFG
from ..graph.iteration_bound import iteration_bound
from ..graph.serialize import from_json, to_json
from ..retiming.function import Retiming
from ..retiming.optimal import minimize_cycle_period
from ..unfolding.orders import retime_unfold, unfold_retime
from ..workloads.registry import BENCHMARKS, PAPER_LABELS, get_workload
from .tables import FailedCell, format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner uses core)
    from ..runner.engine import ExperimentEngine

__all__ = [
    "FailedCell",
    "TABLE_TITLES",
    "Table1Row",
    "Table2Row",
    "OrderComparison",
    "table1_rows",
    "table2_rows",
    "table3_comparison",
    "table4_comparison",
    "table1_row_from_payload",
    "table2_row_from_payload",
    "order_comparison_from_payload",
    "table1_cells",
    "table2_cells",
    "order_comparison_cells",
    "format_table1",
    "format_table2",
    "format_order_comparison",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
]

#: Section titles the tables CLI prints (``=== {title} ===``) — shared
#: with the report pipeline so ``python -m repro report`` reproduces the
#: CLI's paper-table output byte-identically.
TABLE_TITLES: dict[str, str] = {
    "1": "Table 1: code size after retiming and registers needed",
    "2": "Table 2: retiming + unfolding (f=3, LC=101)",
    "3": "Table 3: order comparison, Figure-8 DFG",
    "4": "Table 4: 4-stage lattice at iteration period 8",
}

# ----------------------------------------------------------------------
# Published numbers (for side-by-side reporting).
# ----------------------------------------------------------------------

#: Table 1 of the paper: benchmark -> (orig, retimed, CR, registers, %red).
PAPER_TABLE1: dict[str, tuple[int, int, int, int, float]] = {
    "iir": (8, 16, 12, 2, 25.0),
    "diffeq": (11, 33, 17, 3, 48.5),
    "allpole": (15, 60, 23, 4, 61.7),
    "elliptic": (34, 68, 40, 3, 41.2),
    "lattice": (26, 78, 32, 3, 59.0),
    "volterra": (27, 54, 31, 2, 42.6),
}

#: Table 2 (f=3, LC=101): benchmark -> (R-U, CR, registers, %red).
PAPER_TABLE2: dict[str, tuple[int, int, int, float]] = {
    "iir": (48, 32, 2, 33.3),
    "diffeq": (77, 45, 3, 41.6),
    "allpole": (120, 61, 4, 49.2),
    "elliptic": (238, 114, 3, 52.1),
    "lattice": (182, 90, 3, 50.5),
    "volterra": (168, 89, 2, 47.0),
}

#: Table 3 (Figure-8 DFG): row label -> sizes at uf = 2, 3, 4.
PAPER_TABLE3: dict[str, tuple[object, object, object]] = {
    "unfold-retime": (20, 30, 40),
    "retime-unfold": (20, 30, 30),
    "retime-unfold-CR": (14, 19, 24),
    "iteration period": (20, 19, 13.5),
}

#: Table 4 (4-stage lattice, cycle period 8): row label -> sizes.
PAPER_TABLE4: dict[str, tuple[int, int, int]] = {
    "unfold-retime": (156, 312, 416),
    "retime-unfold": (130, 156, 182),
    "retime-unfold-CR": (61, 90, 119),
}


# ----------------------------------------------------------------------
# Graceful degradation: a row whose engine job died after retries.
# ----------------------------------------------------------------------
# (FailedCell itself lives in .tables so every renderer — plain,
# markdown, LaTeX — can typeset the marker without importing drivers.)


def _failed_cell(payload: dict, name: str = "", label: str = "?", factor: int = 0):
    """The :class:`FailedCell` for a failure payload, else ``None``."""
    if payload.get("ok", True):
        return None
    return FailedCell(
        name=name,
        label=label,
        factor=factor,
        error=str(payload.get("error")),
        status=str(payload.get("status", "error")),
    )


# ----------------------------------------------------------------------
# Table 1 — code size after retiming, CSR, registers.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """Measured Table-1 row for one benchmark."""

    name: str
    label: str
    original: int
    retimed: int
    csr: int
    registers: int
    period_before: int
    period_after: int
    retiming: Retiming

    @property
    def reduction_pct(self) -> float:
        return 100.0 * (self.retimed - self.csr) / self.retimed


def _table1_payload(params: dict) -> dict:
    """Measured Table-1 quantities for one serialized graph (engine worker)."""
    from ..graph.period import cycle_period

    g = from_json(params["graph"])
    before = cycle_period(g)
    after, r = minimize_cycle_period(g)
    return {
        "original": size_original(g),
        "retimed": size_pipelined(g, r),
        "csr": size_csr_pipelined(g, r),
        "registers": r.registers_needed(),
        "period_before": before,
        "period_after": after,
        "retiming": r.as_dict(),
    }


def _table1_row(name: str, g: DFG, payload: dict) -> "Table1Row | FailedCell":
    failed = _failed_cell(payload, name=name, label=PAPER_LABELS[name])
    if failed is not None:
        return failed
    return Table1Row(
        name=name,
        label=PAPER_LABELS[name],
        original=payload["original"],
        retimed=payload["retimed"],
        csr=payload["csr"],
        registers=payload["registers"],
        period_before=payload["period_before"],
        period_after=payload["period_after"],
        retiming=Retiming(g, {k: int(v) for k, v in payload["retiming"].items()}),
    )


def table1_rows(engine: "ExperimentEngine | None" = None) -> list[Table1Row]:
    """Optimal retiming + CSR statistics for the six benchmarks.

    With an engine, each benchmark row is one cached, pool-dispatched unit
    of work; without one the rows are computed inline.  Both paths share
    :func:`_table1_payload`, so the results are identical.
    """
    graphs = {name: get_workload(name) for name in BENCHMARKS}
    params = [{"graph": to_json(graphs[name], indent=None)} for name in BENCHMARKS]
    if engine is not None:
        payloads = engine.map_cached(
            "table1-row", _table1_payload, params, [f"table1:{n}" for n in BENCHMARKS]
        )
    else:
        payloads = [_table1_payload(p) for p in params]
    return [
        _table1_row(name, graphs[name], payload)
        for name, payload in zip(BENCHMARKS, payloads)
    ]


def table1_row_from_payload(name: str, payload: dict) -> "Table1Row | FailedCell":
    """Rebuild one Table-1 row from a journaled/cached payload.

    The report pipeline's entry point: a ``tables`` run journal records
    exactly the :func:`_table1_payload` dicts, so rows rebuilt here
    render byte-identically to the live CLI's.
    """
    return _table1_row(name, get_workload(name), payload)


def table1_cells(rows: list["Table1Row | FailedCell"]) -> tuple[list[str], list[list]]:
    """Table 1's ``(headers, cell rows)`` — shared by every renderer."""
    out: list[list] = []
    for row in rows:
        if isinstance(row, FailedCell):
            out.append([row.label] + [row] * 9)
            continue
        p = PAPER_TABLE1[row.name]
        out.append(
            [
                row.label,
                row.original,
                p[1],
                row.retimed,
                p[2],
                row.csr,
                p[3],
                row.registers,
                p[4],
                row.reduction_pct,
            ]
        )
    headers = [
        "Benchmark",
        "Orig",
        "Ret(paper)",
        "Ret(ours)",
        "CR(paper)",
        "CR(ours)",
        "Rgs(paper)",
        "Rgs(ours)",
        "%Red(paper)",
        "%Red(ours)",
    ]
    return headers, out


def format_table1(rows: list[Table1Row] | None = None) -> str:
    """Side-by-side paper vs. measured rendering of Table 1."""
    rows = rows if rows is not None else table1_rows()
    return format_table(*table1_cells(rows))


# ----------------------------------------------------------------------
# Table 2 — retiming + unfolding (f = 3, LC = 101).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """Measured Table-2 row: the Table-1 retiming unfolded by ``f``."""

    name: str
    label: str
    factor: int
    trip_count: int
    expanded: int  # retime-unfold with remainder iterations counted
    csr: int
    registers: int

    @property
    def reduction_pct(self) -> float:
        return 100.0 * (self.expanded - self.csr) / self.expanded


def _table2_payload(params: dict) -> dict:
    """Measured Table-2 quantities for one serialized graph (engine worker)."""
    g = from_json(params["graph"])
    f = params["factor"]
    n = params["trip_count"]
    _, r = minimize_cycle_period(g)
    remainder = n % f
    return {
        "expanded": size_retime_unfold(g, r, f, remainder),
        "csr": size_csr_retime_unfold(g, r, f, mode=PER_COPY),
        "registers": r.registers_needed(),
    }


def table2_rows(
    f: int = 3, n: int = 101, engine: "ExperimentEngine | None" = None
) -> list[Table2Row]:
    """Unfold each benchmark's Table-1 retiming by ``f`` (the paper reuses
    the same retiming — its register column is identical across tables)."""
    params = [
        {"graph": to_json(get_workload(name), indent=None), "factor": f, "trip_count": n}
        for name in BENCHMARKS
    ]
    if engine is not None:
        payloads = engine.map_cached(
            "table2-row", _table2_payload, params, [f"table2:{b}" for b in BENCHMARKS]
        )
    else:
        payloads = [_table2_payload(p) for p in params]
    return [
        table2_row_from_payload(name, payload, f=f, n=n)
        for name, payload in zip(BENCHMARKS, payloads)
    ]


def table2_row_from_payload(
    name: str, payload: dict, f: int = 3, n: int = 101
) -> "Table2Row | FailedCell":
    """Rebuild one Table-2 row from a journaled/cached payload."""
    failed = _failed_cell(payload, name=name, label=PAPER_LABELS[name], factor=f)
    if failed is not None:
        return failed
    return Table2Row(
        name=name,
        label=PAPER_LABELS[name],
        factor=f,
        trip_count=n,
        expanded=payload["expanded"],
        csr=payload["csr"],
        registers=payload["registers"],
    )


def table2_cells(rows: list["Table2Row | FailedCell"]) -> tuple[list[str], list[list]]:
    """Table 2's ``(headers, cell rows)`` — shared by every renderer."""
    out: list[list] = []
    for row in rows:
        if isinstance(row, FailedCell):
            out.append([row.label] + [row] * 8)
            continue
        p = PAPER_TABLE2[row.name]
        out.append(
            [
                row.label,
                p[0],
                row.expanded,
                p[1],
                row.csr,
                p[2],
                row.registers,
                p[3],
                row.reduction_pct,
            ]
        )
    headers = [
        "Benchmark",
        "R-U(paper)",
        "R-U(ours)",
        "CR(paper)",
        "CR(ours)",
        "Rgs(paper)",
        "Rgs(ours)",
        "%Red(paper)",
        "%Red(ours)",
    ]
    return headers, out


def format_table2(rows: list[Table2Row] | None = None) -> str:
    """Side-by-side paper vs. measured rendering of Table 2."""
    rows = rows if rows is not None else table2_rows()
    return format_table(*table2_cells(rows))


# ----------------------------------------------------------------------
# Tables 3 and 4 — order comparison across unfolding factors.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OrderComparison:
    """Order-comparison column for one unfolding factor (Tables 3/4).

    ``csr_mode`` records which decrement convention prices the CR row —
    Table 3 uses per-iteration (2 per register), Table 4 per-copy
    (``f + 1`` per register).
    """

    factor: int
    period: int
    iteration_period: Fraction
    bound: Fraction
    unfold_retime_size: int
    retime_unfold_size: int
    csr_size: int
    registers: int
    csr_mode: str
    m_unfold_retime: int
    m_retime_unfold: int


def _orders_payload(params: dict) -> dict:
    """Measured order-comparison column for one factor (engine worker)."""
    from ..core.partial import minimize_registers_for_unfold

    g = from_json(params["graph"])
    f = params["factor"]
    period = params["period"]
    csr_mode = params["csr_mode"]
    ur = unfold_retime(g, f, period=period)
    ru = retime_unfold(g, f, period=period if period is not None else ur.period)
    r = ru.retiming
    if g.num_nodes <= 7:
        # Small graphs: provably register-minimal retiming at the same period.
        better = minimize_registers_for_unfold(g, f, ru.period)
        if better is not None and better.registers_needed() <= r.registers_needed():
            r = better
    bound = iteration_bound(g)
    return {
        "period": ru.period,
        "iteration_period": [ru.iteration_period.numerator, ru.iteration_period.denominator],
        "bound": [bound.numerator, bound.denominator],
        "unfold_retime_size": size_unfold_retime(g, ur.retiming, f),
        "retime_unfold_size": size_retime_unfold(g, r, f),
        "csr_size": size_csr_retime_unfold(g, r, f, mode=csr_mode),
        "registers": r.registers_needed(),
        "m_unfold_retime": ur.retiming.max_value,
        "m_retime_unfold": r.max_value,
    }


def order_comparison_from_payload(
    f: int, csr_mode: str, payload: dict, name: str = ""
) -> "OrderComparison | FailedCell":
    """Rebuild one order-comparison column from a journaled payload.

    ``csr_mode`` is not recorded in the payload (it is part of the cache
    key's params) — callers pass the mode the table used:
    :data:`~repro.core.predicated.PER_ITERATION` for Table 3,
    :data:`~repro.core.predicated.PER_COPY` for Table 4.
    """
    failed = _failed_cell(payload, name=name, factor=f)
    if failed is not None:
        return failed
    return _comparison_from_payload(f, csr_mode, payload)


def _comparison_from_payload(f: int, csr_mode: str, payload: dict) -> OrderComparison:
    return OrderComparison(
        factor=f,
        period=payload["period"],
        iteration_period=Fraction(*payload["iteration_period"]),
        bound=Fraction(*payload["bound"]),
        unfold_retime_size=payload["unfold_retime_size"],
        retime_unfold_size=payload["retime_unfold_size"],
        csr_size=payload["csr_size"],
        registers=payload["registers"],
        csr_mode=csr_mode,
        m_unfold_retime=payload["m_unfold_retime"],
        m_retime_unfold=payload["m_retime_unfold"],
    )


def _compare_orders(
    g: DFG,
    factors: tuple[int, ...],
    periods: list[int | None],
    csr_mode: str,
    engine: "ExperimentEngine | None",
) -> list[OrderComparison]:
    graph_json = to_json(g, indent=None)
    params = [
        {"graph": graph_json, "factor": f, "period": p, "csr_mode": csr_mode}
        for f, p in zip(factors, periods)
    ]
    if engine is not None:
        payloads = engine.map_cached(
            "order-comparison",
            _orders_payload,
            params,
            [f"orders:{g.name}:f={f}" for f in factors],
        )
    else:
        payloads = [_orders_payload(p) for p in params]
    return [
        order_comparison_from_payload(f, csr_mode, payload, name=g.name)
        for f, payload in zip(factors, payloads)
    ]


def table3_comparison(
    factors: tuple[int, ...] = (2, 3, 4), engine: "ExperimentEngine | None" = None
) -> list[OrderComparison]:
    """Order comparison on the Figure-8 DFG at the *optimal* period per
    factor (both orders achieve the same optimum — Chao & Sha)."""
    g = get_workload("figure8")
    return _compare_orders(g, factors, [None] * len(factors), PER_ITERATION, engine)


def table4_comparison(
    factors: tuple[int, ...] = (2, 3, 4),
    iteration_period: int = 8,
    engine: "ExperimentEngine | None" = None,
) -> list[OrderComparison]:
    """Order comparison on the 4-stage lattice at a fixed iteration period
    (the paper fixes cycle period 8 per original iteration)."""
    g = get_workload("lattice")
    return _compare_orders(
        g, factors, [iteration_period * f for f in factors], PER_COPY, engine
    )


def order_comparison_cells(
    cols: list["OrderComparison | FailedCell"], paper: dict[str, tuple] | None = None
) -> tuple[list[str], list[list]]:
    """Tables 3/4's ``(headers, cell rows)``: approaches as rows, factors
    as columns — shared by every renderer."""
    headers = ["Approach"] + [f"uf={c.factor}" for c in cols]

    def cell(c: "OrderComparison | FailedCell", attr: str, render=lambda v: v):
        return c if isinstance(c, FailedCell) else render(getattr(c, attr))

    rows: list[list[object]] = [
        ["unfold-retime"] + [cell(c, "unfold_retime_size") for c in cols],
        ["retime-unfold"] + [cell(c, "retime_unfold_size") for c in cols],
        ["retime-unfold-CR"] + [cell(c, "csr_size") for c in cols],
        ["iteration period"] + [cell(c, "iteration_period", str) for c in cols],
    ]
    if paper is not None:
        for label in ("unfold-retime", "retime-unfold", "retime-unfold-CR"):
            if label in paper:
                rows.append([f"{label} (paper)"] + list(paper[label]))
        if "iteration period" in paper:
            rows.append(["iteration period (paper)"] + list(paper["iteration period"]))
    return headers, rows


def format_order_comparison(
    cols: list[OrderComparison], paper: dict[str, tuple] | None = None
) -> str:
    """Tables 3/4-style rendering: approaches as rows, factors as columns."""
    return format_table(*order_comparison_cells(cols, paper))
