"""Regenerate every paper table on the command line.

Usage::

    python -m repro.analysis            # all four tables
    python -m repro.analysis 1 3        # just Tables 1 and 3
"""

from __future__ import annotations

import sys

from .experiments import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_order_comparison,
    format_table1,
    format_table2,
    table3_comparison,
    table4_comparison,
)


def main(argv: list[str]) -> int:
    wanted = set(argv) or {"1", "2", "3", "4"}
    if "1" in wanted:
        print("=== Table 1: code size after retiming and registers needed ===")
        print(format_table1())
        print()
    if "2" in wanted:
        print("=== Table 2: retiming + unfolding (f=3, LC=101) ===")
        print(format_table2())
        print()
    if "3" in wanted:
        print("=== Table 3: order comparison, Figure-8 DFG ===")
        print(format_order_comparison(table3_comparison(), PAPER_TABLE3))
        print()
    if "4" in wanted:
        print("=== Table 4: 4-stage lattice at iteration period 8 ===")
        print(format_order_comparison(table4_comparison(), PAPER_TABLE4))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
