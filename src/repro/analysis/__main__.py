"""Regenerate every paper table on the command line.

Usage::

    python -m repro.analysis                    # all four tables (cached)
    python -m repro.analysis 1 3                # just Tables 1 and 3
    python -m repro.analysis --jobs 4 --stats   # parallel + metrics report
    python -m repro.analysis --no-cache         # force recomputation

Tables go through the :mod:`repro.runner` engine: rows are cached on disk
(``.repro-cache`` or ``$REPRO_CACHE_DIR``) keyed on graph content,
parameters and a digest of the library sources, so a second run is served
almost entirely from cache and any source edit invalidates it
automatically.  ``--stats`` prints cache hit/miss counters, per-row wall
time and VM instruction counts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .. import observability
from ..ioutil import atomic_write_text
from ..runner import resilience
from ..runner.engine import ExperimentEngine, default_engine
from ..runner.journal import JournalError, RunCheckpoint
from ..runner.resilience import FaultPlan, RetryPolicy
from .experiments import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    TABLE_TITLES,
    format_order_comparison,
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
    table3_comparison,
    table4_comparison,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the paper's evaluation tables (1-4).",
    )
    # No `choices` here: argparse on 3.11 rejects an empty nargs="*" list
    # against choices, and "no tables named" must mean "all of them".
    parser.add_argument(
        "tables",
        nargs="*",
        metavar="N",
        help="tables to print: 1 2 3 4 (default: all)",
    )
    add_engine_arguments(parser)
    return parser


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--jobs/--no-cache/--stats/--cache-dir`` flag group."""
    group = parser.add_argument_group("experiment engine")
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (1 = inline, 0 = one per CPU)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    group.add_argument(
        "--stats",
        action="store_true",
        help="print engine metrics (cache hits, wall time, VM counts)",
    )
    group.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="enable tracing; write a Chrome trace-event JSON to FILE",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="enable metrics; write the JSON metrics export to FILE",
    )
    rgroup = parser.add_argument_group("resilience")
    rgroup.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="fault-injection plan: a JSON file path or inline JSON "
        "(default: $REPRO_FAULT_PLAN; see docs/RESILIENCE.md)",
    )
    rgroup.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max attempts per job before it degrades to FAILED (default 3)",
    )
    rgroup.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-attempt deadline; late attempts are retried, then FAILED",
    )
    rgroup.add_argument(
        "--outcomes-out",
        default=None,
        metavar="FILE",
        help="write per-job outcome records (status, attempts, faults) as JSON",
    )
    cgroup = parser.add_argument_group("checkpointing")
    cgroup.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="record a durable run journal into DIR (fsync'd write-ahead "
        "JSONL; see docs/CHECKPOINTING.md)",
    )
    cgroup.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume an interrupted run from DIR's journal: completed jobs "
        "are rehydrated, only pending ones re-execute",
    )
    cgroup.add_argument(
        "--supervised",
        action="store_true",
        help="run parallel work in the supervised process pool: dead or "
        "hung workers are respawned and their jobs requeued",
    )
    cgroup.add_argument(
        "--worker-heartbeat-timeout",
        type=float,
        default=30.0,
        metavar="SEC",
        help="heartbeat silence before a supervised worker is declared "
        "hung and replaced (default 30)",
    )
    dgroup = parser.add_argument_group("distributed execution")
    dgroup.add_argument(
        "--workers",
        choices=("local", "remote"),
        default="local",
        help="execution fabric: 'local' pools in this process, 'remote' "
        "leases units to worker processes over a work plane "
        "(see docs/SERVER.md)",
    )
    dgroup.add_argument(
        "--coordinator",
        default=None,
        metavar="HOST:PORT",
        help="with --workers remote: offload units to an existing "
        "`repro serve` daemon instead of spawning a work plane",
    )
    dgroup.add_argument(
        "--remote-workers",
        type=int,
        default=None,
        metavar="N",
        help="with --workers remote: worker processes to spawn on the "
        "work plane (default 2)",
    )
    dgroup.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="with --workers remote: lease expiry before a silent "
        "worker's unit requeues (default 30)",
    )


def validate_engine_args(args: argparse.Namespace) -> None:
    """Reject incompatible flag combinations up front, one clear line each.

    Catching these before any engine (or work plane) spins up keeps the
    failure a single ``error:`` line instead of a mid-run surprise.
    """
    workers = getattr(args, "workers", "local")
    if workers == "remote" and getattr(args, "supervised", False):
        raise SystemExit(
            "error: --supervised and --workers remote are mutually "
            "exclusive (pick one execution fabric)"
        )
    if workers != "remote":
        for value, flag in (
            (getattr(args, "coordinator", None), "--coordinator"),
            (getattr(args, "remote_workers", None), "--remote-workers"),
            (getattr(args, "lease_timeout", None), "--lease-timeout"),
        ):
            if value is not None:
                raise SystemExit(f"error: {flag} requires --workers remote")
    elif getattr(args, "coordinator", None) and (
        getattr(args, "remote_workers", None) is not None
    ):
        raise SystemExit(
            "error: --coordinator and --remote-workers are mutually "
            "exclusive (an existing daemon brings its own workers)"
        )


def topology_from_args(args: argparse.Namespace) -> dict:
    """The execution-topology fingerprint a journal records (satellite of
    ``--resume`` safety: resuming under a different fabric would replay
    the journal against different failure semantics)."""
    return {
        "workers": getattr(args, "workers", "local") or "local",
        "supervised": bool(getattr(args, "supervised", False)),
    }


def _format_topology(topology: dict) -> str:
    workers = topology.get("workers", "local")
    supervised = "yes" if topology.get("supervised") else "no"
    return f"workers={workers} supervised={supervised}"


def check_topology(config: dict, args: argparse.Namespace) -> None:
    """Refuse ``--resume`` under a different topology than was journaled.

    Journals from before topology recording carry no fingerprint and
    stay resumable as before.  Raises :class:`JournalError`, which the
    CLIs turn into a one-line ``error:`` + exit 2.
    """
    recorded = config.get("topology")
    if recorded is None:
        return
    current = topology_from_args(args)
    if recorded != current:
        raise JournalError(
            "--resume topology mismatch: the journal recorded "
            f"{_format_topology(recorded)} but this command says "
            f"{_format_topology(current)} (rerun with the recorded "
            "topology)"
        )


def engine_from_args(args: argparse.Namespace) -> ExperimentEngine:
    """Build the engine an argparse namespace describes.

    Requesting ``--trace`` or ``--metrics-out`` turns observability on for
    the whole run (workers included) before any work is submitted.
    ``--fault-plan`` (or ``$REPRO_FAULT_PLAN``) activates the
    fault-injection plan process-wide, so the engine forwards it to its
    pool workers; without one every resilience hook stays a no-op.
    ``--workers remote`` swaps the local pool for a distributed executor:
    a spawned work plane (:class:`~repro.runner.remote.RemoteFabric`) or,
    with ``--coordinator``, offload to an existing serve daemon
    (:class:`~repro.server.client.RemoteOffloadExecutor`).
    """
    validate_engine_args(args)
    if getattr(args, "trace", None) or getattr(args, "metrics_out", None):
        observability.enable()
    spec = getattr(args, "fault_plan", None) or os.environ.get(
        resilience.FAULT_PLAN_ENV
    )
    if spec:
        resilience.activate(FaultPlan.from_spec(spec))
    retry = RetryPolicy()
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "job_timeout", None)
    if retries is not None or timeout is not None:
        retry = RetryPolicy(
            max_attempts=retries if retries is not None else retry.max_attempts,
            timeout=timeout,
        )
    remote = None
    if getattr(args, "workers", "local") == "remote":
        if getattr(args, "coordinator", None):
            from ..server.client import RemoteOffloadExecutor

            remote = RemoteOffloadExecutor(args.coordinator)
        else:
            from ..runner.remote import RemoteFabric

            workers = getattr(args, "remote_workers", None)
            lease_timeout = getattr(args, "lease_timeout", None)
            remote = RemoteFabric(
                workers=2 if workers is None else workers,
                policy=retry,
                lease_timeout=30.0 if lease_timeout is None else lease_timeout,
            )
    return default_engine(
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        retry=retry,
        supervised=getattr(args, "supervised", False),
        heartbeat_timeout=getattr(args, "worker_heartbeat_timeout", 30.0),
        remote=remote,
    )


def checkpoint_from_args(args: argparse.Namespace) -> RunCheckpoint | None:
    """The ``--journal`` / ``--resume`` checkpoint, if either was given.

    ``--resume DIR`` implies journaling into the same directory (the
    resumed run appends to the journal it replays), so the two flags are
    mutually exclusive.
    """
    journal_dir = getattr(args, "journal", None)
    resume_dir = getattr(args, "resume", None)
    if journal_dir and resume_dir:
        raise SystemExit(
            "error: --journal and --resume are mutually exclusive "
            "(--resume already appends to the journal it replays)"
        )
    if resume_dir:
        return RunCheckpoint(resume_dir, resume=True)
    if journal_dir:
        return RunCheckpoint(journal_dir)
    return None


def export_observability(args: argparse.Namespace, engine: ExperimentEngine) -> None:
    """Write the ``--trace`` / ``--metrics-out`` artifacts after a run."""
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    if not trace_path and not metrics_path:
        return
    engine.publish_metrics()
    if trace_path:
        observability.write_chrome_trace(trace_path, observability.OBS.tracer.roots)
        print(f"wrote Chrome trace: {trace_path}", file=sys.stderr)
    if metrics_path:
        atomic_write_text(metrics_path, observability.OBS.metrics.to_json())
        print(f"wrote metrics JSON: {metrics_path}", file=sys.stderr)


def report_resilience(args: argparse.Namespace, engine: ExperimentEngine) -> int:
    """Post-run resilience reporting shared by the engine commands.

    Writes the ``--outcomes-out`` artifact, prints the failure summary for
    degraded runs, and returns the number of FAILED units (callers fold
    this into the exit code).
    """
    outcomes_path = getattr(args, "outcomes_out", None)
    if outcomes_path:
        s = engine.stats
        doc = {
            "stats": {
                "calls": s.calls,
                "computed": s.computed,
                "completed": s.completed,
                "errors": s.errors,
                "retried": s.retried,
                "timed_out": s.timed_out,
                "failed": s.failed,
                "resumed": s.resumed,
                "respawned": s.respawned,
            },
            "outcomes": [o.as_dict() for o in s.outcomes],
        }
        # Atomic (temp file + rename): an interrupt mid-report can never
        # leave a truncated, unparseable artifact behind.
        atomic_write_text(outcomes_path, json.dumps(doc, indent=2))
        print(f"wrote job outcomes JSON: {outcomes_path}", file=sys.stderr)
    summary = engine.failure_summary()
    if summary:
        print("=== Failure summary ===", file=sys.stderr)
        print(summary, file=sys.stderr)
    return engine.stats.failed + engine.stats.timed_out


def print_tables(wanted: set[str], engine: ExperimentEngine) -> None:
    # Titles come from TABLE_TITLES so this live output and the report
    # pipeline's --paper-tables rendering stay byte-identical.
    if "1" in wanted:
        print(f"=== {TABLE_TITLES['1']} ===")
        print(format_table1(table1_rows(engine=engine)))
        print()
    if "2" in wanted:
        print(f"=== {TABLE_TITLES['2']} ===")
        print(format_table2(table2_rows(engine=engine)))
        print()
    if "3" in wanted:
        print(f"=== {TABLE_TITLES['3']} ===")
        print(format_order_comparison(table3_comparison(engine=engine), PAPER_TABLE3))
        print()
    if "4" in wanted:
        print(f"=== {TABLE_TITLES['4']} ===")
        print(format_order_comparison(table4_comparison(engine=engine), PAPER_TABLE4))
        print()


def tables_main(args: argparse.Namespace) -> int:
    """The full tables flow shared by both CLI entry points.

    Checkpoint-aware: ``--journal DIR`` records every row durably;
    ``--resume DIR`` restores the recorded table selection, rehydrates
    completed rows from the journal, and recomputes only the rest.
    """
    engine = engine_from_args(args)
    try:
        checkpoint = checkpoint_from_args(args)
        wanted = set(args.tables) or {"1", "2", "3", "4"}
        config = {
            "tables": sorted(wanted),
            "topology": topology_from_args(args),
        }
        if checkpoint is not None:
            if checkpoint.resume:
                config = checkpoint.restore_config("tables")
                check_topology(config, args)
                wanted = set(config["tables"])
            checkpoint.attach(engine, "tables", config)
        print_tables(wanted, engine)
        if args.stats:
            print("=== Engine stats ===")
            print(engine.stats_summary())
        export_observability(args, engine)
        degraded = report_resilience(args, engine)
        if checkpoint is not None:
            checkpoint.finish(engine, "degraded" if degraded else "ok")
        return 1 if degraded else 0
    finally:
        engine.close()


def main(argv: list[str]) -> int:
    if argv and argv[0] == "report":
        # ``python -m repro.analysis report ...`` is an alias for
        # ``python -m repro report ...`` (the report pipeline lives in
        # this package; see docs/REPORT.md).
        from .report import main as report_cli

        return report_cli(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    bad = [t for t in args.tables if t not in {"1", "2", "3", "4"}]
    if bad:
        parser.error(f"unknown table(s): {' '.join(bad)} (choose from 1 2 3 4)")
    try:
        return tables_main(args)
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
