"""Minimal columnar dataframes for report aggregation.

The report pipeline (:mod:`repro.analysis.report`) loads thousands of
journaled job records and needs group-bys, filters and summary statistics
over them — exactly the slice of pandas the project would use, and
nothing more.  :class:`Frame` is that slice in pure python: an ordered
``column name -> list`` mapping with deterministic iteration, so every
aggregate built from one is a deterministic function of the *set* of
records it holds (records are sorted before aggregation, never by
arrival order).

Statistics live here too: :func:`mean`, :func:`quantile` (linear
interpolation, the numpy default) and :func:`bootstrap_ci` — a seeded
bootstrap percentile interval, deterministic across machines and python
versions because it draws only through ``random.Random(seed)``.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Frame",
    "bootstrap_ci",
    "mean",
    "quantile",
    "summarize",
]


class Frame:
    """An ordered, immutable-ish bag of equal-length columns.

    Construct from columns (``Frame({"a": [1, 2]})``) or records
    (:meth:`from_records`).  Row operations (:meth:`filter`,
    :meth:`sort_by`, :meth:`group_by`) return new frames; columns are
    shared copy-on-write style (lists are copied on construction, so a
    caller mutating its input cannot corrupt the frame).
    """

    def __init__(self, columns: Mapping[str, Sequence[object]] | None = None) -> None:
        cols = {name: list(values) for name, values in (columns or {}).items()}
        lengths = {len(v) for v in cols.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"columns have unequal lengths: "
                f"{ {k: len(v) for k, v in cols.items()} }"
            )
        self._cols: dict[str, list] = cols
        self._len = lengths.pop() if lengths else 0

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, object]], columns: Sequence[str] | None = None
    ) -> "Frame":
        """Build a frame from row dicts; missing keys become ``None``.

        Without an explicit ``columns`` list the union of keys is used,
        in first-seen order — deterministic for deterministic inputs.
        """
        rows = list(records)
        if columns is None:
            seen: dict[str, None] = {}
            for rec in rows:
                for key in rec:
                    seen.setdefault(key, None)
            columns = list(seen)
        data: dict[str, list] = {name: [] for name in columns}
        for rec in rows:
            for name in columns:
                data[name].append(rec.get(name))
        return cls(data)

    # -- basic protocol ------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({self._len} rows x {list(self._cols)})"

    @property
    def columns(self) -> list[str]:
        return list(self._cols)

    def column(self, name: str) -> list:
        """One column as a list (a copy — safe to mutate)."""
        return list(self._cols[name])

    def rows(self) -> Iterator[dict]:
        """Iterate rows as dicts."""
        names = list(self._cols)
        for i in range(self._len):
            yield {name: self._cols[name][i] for name in names}

    def to_records(self) -> list[dict]:
        return list(self.rows())

    # -- row operations ------------------------------------------------

    def filter(self, pred: Callable[[dict], bool]) -> "Frame":
        """Rows for which ``pred(row_dict)`` is true, order preserved."""
        keep = [i for i, row in enumerate(self.rows()) if pred(row)]
        return Frame(
            {name: [col[i] for i in keep] for name, col in self._cols.items()}
        )

    def select(self, *names: str) -> "Frame":
        return Frame({name: self._cols[name] for name in names})

    def with_column(self, name: str, fn: Callable[[dict], object]) -> "Frame":
        """A new frame with ``name`` computed per-row by ``fn``."""
        cols = dict(self._cols)
        cols[name] = [fn(row) for row in self.rows()]
        return Frame(cols)

    def sort_by(self, *names: str) -> "Frame":
        """Stable sort by the named columns (``None`` sorts first).

        Values are compared by ``(type name, value)`` within each column
        so heterogeneous columns (ints mixed with strings from degraded
        records) still sort deterministically instead of raising.
        """

        def key(i: int):
            out = []
            for name in names:
                v = self._cols[name][i]
                out.append((0, "", "") if v is None else (1, type(v).__name__, v))
            return out

        order = sorted(range(self._len), key=key)
        return Frame(
            {name: [col[i] for i in order] for name, col in self._cols.items()}
        )

    def group_by(self, *names: str) -> list[tuple[tuple, "Frame"]]:
        """``(key, sub-frame)`` pairs, keys in sorted order.

        The key is always a tuple, even for a single grouping column.
        """
        buckets: dict[tuple, list[int]] = {}
        for i in range(self._len):
            key = tuple(self._cols[name][i] for name in names)
            buckets.setdefault(key, []).append(i)

        def sort_key(key: tuple):
            return [
                (0, "", "") if v is None else (1, type(v).__name__, v) for v in key
            ]

        out = []
        for key in sorted(buckets, key=sort_key):
            idx = buckets[key]
            out.append(
                (
                    key,
                    Frame(
                        {
                            name: [col[i] for i in idx]
                            for name, col in self._cols.items()
                        }
                    ),
                )
            )
        return out

    def concat(self, other: "Frame") -> "Frame":
        """Row-wise concatenation over the union of columns."""
        names = list(dict.fromkeys(self.columns + other.columns))
        data = {}
        for name in names:
            a = self._cols.get(name, [None] * self._len)
            b = other._cols.get(name, [None] * len(other))
            data[name] = list(a) + list(b)
        return Frame(data)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (numpy's default method)."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    xs = sorted(values)
    pos = q * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def bootstrap_ci(
    values: Sequence[float],
    stat: Callable[[Sequence[float]], float] = mean,
    n_boot: int = 800,
    alpha: float = 0.05,
    seed: int = 13,
) -> tuple[float, float]:
    """Seeded bootstrap percentile confidence interval for ``stat``.

    Deterministic: resamples are drawn from ``random.Random(seed)``, so
    the same values always yield the same interval — a requirement for
    golden-file report tests and ``--diff`` stability.  A single value
    degenerates to a zero-width interval.
    """
    if not values:
        raise ValueError("bootstrap_ci of empty sequence")
    if len(values) == 1:
        v = stat(values)
        return (v, v)
    rng = random.Random(seed)
    n = len(values)
    stats = sorted(
        stat([values[rng.randrange(n)] for _ in range(n)]) for _ in range(n_boot)
    )
    return (quantile(stats, alpha / 2.0), quantile(stats, 1.0 - alpha / 2.0))


def summarize(values: Sequence[float], ci: bool = True) -> dict:
    """The report's standard numeric summary block for one sample."""
    out: dict[str, object] = {
        "n": len(values),
        "min": min(values),
        "max": max(values),
        "mean": round(mean(values), 4),
    }
    if ci and values:
        lo, hi = bootstrap_ci(values)
        out["ci95"] = [round(lo, 4), round(hi, 4)]
    return out
