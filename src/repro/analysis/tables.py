"""Table rendering for experiment reports: plain text, markdown, LaTeX.

Dependency-free formatting shared by the benchmark harness, the example
scripts and the publication report pipeline
(:mod:`repro.analysis.report`).  All three renderers eat the same
``(headers, rows)`` cell lists, so a table's plain, markdown and LaTeX
forms always agree cell-for-cell; the only renderer-specific behavior is
how *marker* cells — :class:`FailedCell` placeholders and the oracle gap
table's ``FAILED`` / ``TIMED_OUT`` / ``ERROR`` strings — are typeset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = [
    "FailedCell",
    "GAP_TABLE_HEADERS",
    "MARKER_STRINGS",
    "format_gap_table",
    "gap_table_cells",
    "format_latex_table",
    "format_markdown_table",
    "format_table",
    "latex_escape",
]


# ----------------------------------------------------------------------
# Graceful degradation: a row whose engine job died after retries.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FailedCell:
    """Placeholder for a table row/column whose unit of work FAILED.

    The engine's resilience layer degrades a retry-exhausted job into a
    structured failure payload instead of raising; the table drivers map
    such payloads onto this marker so the run renders ``FAILED`` cells
    (and exits non-zero with a summary) rather than dying mid-report.

    ``status`` preserves *how* the unit died: ``"failed"`` /
    ``"timed_out"`` for engine-level exhaustion (the payload's
    ``status`` field), ``"error"`` for deterministic in-band graph
    errors — so status-aware renderings (the oracle gap table, the LaTeX
    emitter) can distinguish a crash from a deadline from a bad graph.
    """

    name: str = ""
    label: str = "?"
    factor: int = 0
    error: str = ""
    status: str = "error"


#: Marker strings the status-aware renderers may receive as plain cells
#: (the gap table builds these from ``status.upper()``).
MARKER_STRINGS: frozenset[str] = frozenset({"FAILED", "TIMED_OUT", "ERROR"})


# ----------------------------------------------------------------------
# Plain monospace tables
# ----------------------------------------------------------------------


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    materialized = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[k]) for k, c in enumerate(cells))

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)


def _cell(x: object) -> str:
    if isinstance(x, FailedCell):
        # The historical plain rendering: a flat FAILED marker (status
        # detail lives in the failure summary, not the table body).
        return "FAILED"
    if isinstance(x, float):
        return f"{x:.1f}"
    return str(x)


# ----------------------------------------------------------------------
# Markdown tables
# ----------------------------------------------------------------------


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """GitHub-flavored pipe table over the same cells as :func:`format_table`.

    The first column is left-aligned (labels), the rest right-aligned
    (numbers) — the convention every table in the paper follows.
    """
    materialized = [[_cell(x) for x in row] for row in rows]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    aligns = ["---" if k == 0 else "---:" for k in range(len(headers))]
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join(aligns) + " |",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in materialized)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# LaTeX tables
# ----------------------------------------------------------------------

_LATEX_SPECIALS = {
    "\\": r"\textbackslash{}",
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
}


def latex_escape(text: str) -> str:
    """Escape LaTeX special characters in one cell of table text."""
    return "".join(_LATEX_SPECIALS.get(ch, ch) for ch in str(text))


def _latex_cell(x: object) -> str:
    """One LaTeX table cell — the status-aware marker rendering path.

    :class:`FailedCell` placeholders and bare marker strings
    (``FAILED`` / ``TIMED_OUT`` / ``ERROR``) typeset as small caps with
    the underscore spelled as a space: ``\\textsc{timed out}`` — valid
    LaTeX where the raw marker would be an underscore error outside
    math mode.
    """
    if isinstance(x, FailedCell):
        return r"\textsc{" + x.status.replace("_", " ").lower() + "}"
    if isinstance(x, str) and x in MARKER_STRINGS:
        return r"\textsc{" + x.replace("_", " ").lower() + "}"
    return latex_escape(_cell(x))


def format_latex_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    caption: str | None = None,
    label: str | None = None,
) -> str:
    """Render the same cells as :func:`format_table` as a LaTeX table.

    Plain ``tabular`` (no package dependencies): first column ``l``, the
    rest ``r``, ``\\hline`` rules.  Cells go through
    :func:`latex_escape`; marker cells (:class:`FailedCell` or the gap
    table's status strings) take the :func:`_latex_cell` small-caps
    path.
    """
    materialized = [[_latex_cell(x) for x in row] for row in rows]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    colspec = "l" + "r" * (len(headers) - 1)
    lines = [r"\begin{table}[ht]", r"\centering", r"\begin{tabular}{" + colspec + "}"]
    lines.append(r"\hline")
    lines.append(" & ".join(latex_escape(h) for h in headers) + r" \\")
    lines.append(r"\hline")
    lines.extend(" & ".join(row) + r" \\" for row in materialized)
    lines.append(r"\hline")
    lines.append(r"\end{tabular}")
    if caption is not None:
        lines.append(r"\caption{" + latex_escape(caption) + "}")
    if label is not None:
        lines.append(r"\label{" + label + "}")
    lines.append(r"\end{table}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The oracle gap table (``sweep --oracle``)
# ----------------------------------------------------------------------

#: Gap-table columns, in order.  ``period*`` is the oracle's certified
#: optimum (best witnessed period); ``lower`` its certified lower bound.
GAP_TABLE_HEADERS: tuple[str, ...] = (
    "seed",
    "graph",
    "period*",
    "lower",
    "proven",
    "gap",
)


def gap_table_cells(rows: Iterable[Mapping[str, object]]) -> list[list[object]]:
    """The gap table's cell lists (shared by all three renderers)."""
    out: list[list[object]] = []
    for row in rows:
        status = str(row.get("status", "ok"))
        if status != "ok":
            marker = status.upper()
            out.append([row.get("seed", ""), row.get("label", "?")] + [marker] * 4)
            continue
        out.append(
            [
                row.get("seed", ""),
                row.get("label", "?"),
                row.get("period"),
                row.get("optimum_lower"),
                "yes" if row.get("proven") else "no",
                row.get("gap"),
            ]
        )
    return out


def format_gap_table(rows: Iterable[Mapping[str, object]]) -> str:
    """Render per-graph oracle optimality gaps (``sweep --oracle``).

    Each row mapping carries ``seed``, ``label``, ``status`` and — for
    ``status == "ok"`` — ``period``, ``optimum_lower``, ``proven`` and
    ``gap``.  Rows whose oracle job did not complete render their status
    as marker cells (``FAILED`` / ``TIMED_OUT`` / ``ERROR``), the same
    graceful degradation as the paper tables' FAILED cells.
    """
    return format_table(list(GAP_TABLE_HEADERS), gap_table_cells(rows))
