"""Plain-text table rendering for experiment reports.

Minimal, dependency-free formatting shared by the benchmark harness and the
example scripts: monospace columns, right-aligned numbers, a separator rule
under the header.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    materialized = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[k]) for k, c in enumerate(cells))

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)


def _cell(x: object) -> str:
    if isinstance(x, float):
        return f"{x:.1f}"
    return str(x)
