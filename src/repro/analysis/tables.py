"""Plain-text table rendering for experiment reports.

Minimal, dependency-free formatting shared by the benchmark harness and the
example scripts: monospace columns, right-aligned numbers, a separator rule
under the header.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_gap_table", "GAP_TABLE_HEADERS"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    materialized = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[k]) for k, c in enumerate(cells))

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)


def _cell(x: object) -> str:
    if isinstance(x, float):
        return f"{x:.1f}"
    return str(x)


#: Gap-table columns, in order.  ``period*`` is the oracle's certified
#: optimum (best witnessed period); ``lower`` its certified lower bound.
GAP_TABLE_HEADERS: tuple[str, ...] = (
    "seed",
    "graph",
    "period*",
    "lower",
    "proven",
    "gap",
)


def format_gap_table(rows: Iterable[Mapping[str, object]]) -> str:
    """Render per-graph oracle optimality gaps (``sweep --oracle``).

    Each row mapping carries ``seed``, ``label``, ``status`` and — for
    ``status == "ok"`` — ``period``, ``optimum_lower``, ``proven`` and
    ``gap``.  Rows whose oracle job did not complete render their status
    as marker cells (``FAILED`` / ``TIMED_OUT`` / ``ERROR``), the same
    graceful degradation as the paper tables' FAILED cells.
    """
    out: list[list[object]] = []
    for row in rows:
        status = str(row.get("status", "ok"))
        if status != "ok":
            marker = status.upper()
            out.append([row.get("seed", ""), row.get("label", "?")] + [marker] * 4)
            continue
        out.append(
            [
                row.get("seed", ""),
                row.get("label", "?"),
                row.get("period"),
                row.get("optimum_lower"),
                "yes" if row.get("proven") else "no",
                row.get("gap"),
            ]
        )
    return format_table(list(GAP_TABLE_HEADERS), out)
