"""Publication-grade report pipeline over journaled runs.

``python -m repro report <runs-dir>...`` turns the durable artifacts
every run already leaves behind — fsync'd run journals
(``--journal``), ``--outcomes-out`` records, ``BENCH_*.json``
baselines — into the system's user-facing product: numbered markdown +
LaTeX tables and a machine-readable ``report.json``.

The report has a fixed table numbering (publication style):

1–4.  The paper's Tables 1–4, rebuilt from ``tables``-run journal
      payloads and rendered *byte-identically* to the live
      ``python -m repro.analysis`` output (the ``--paper-tables`` mode
      prints exactly that text).
5.    Randomized code-size reduction at sweep scale — the scaled-up
      Table 1/2 analogue over every journaled random graph, with
      seeded-bootstrap 95% confidence intervals.
6.    Theorem 4.4/4.5 inequality margins (``S_{f,r} − S_{r,f}``)
      per unfolding factor, violations counted.
7.    Oracle optimality gaps (``sweep --oracle``): the per-graph gap
      table plus the gap distribution.
8.    Fault, retry and resume accounting per journal and per
      ``--outcomes-out`` document, with the conservation law
      ``completed + failed + shed == submitted`` checked.
9.    Deterministic operation-counter baselines from ``BENCH_*.json``.

Every section is built under *error isolation*: one malformed run
degrades that section to a FAILED block (named in the output, error
preserved) instead of killing the report — the same graceful
degradation contract as the engine's FAILED cells.

``--diff A B`` compares two reports (run directories or ``report.json``
files) and exits non-zero on material regressions — changed paper-table
cells, new inequality violations, a larger oracle gap, broken
accounting identities, or op-counter growth beyond ``--counter-ratio``.
This makes the report the same tool CI uses to gate performance and
correctness trajectories.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from ..core.predicated import PER_COPY, PER_ITERATION
from ..ioutil import atomic_write_text
from ..runner.journal import MultiRunScan, scan_run_dirs
from ..workloads.registry import BENCHMARKS
from .experiments import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    TABLE_TITLES,
    order_comparison_cells,
    order_comparison_from_payload,
    table1_cells,
    table1_row_from_payload,
    table2_cells,
    table2_row_from_payload,
)
from .frames import Frame, summarize
from .tables import (
    FailedCell,
    GAP_TABLE_HEADERS,
    format_latex_table,
    format_markdown_table,
    format_table,
    gap_table_cells,
)

__all__ = [
    "REPORT_VERSION",
    "DiffResult",
    "Report",
    "Section",
    "build_report",
    "diff_reports",
    "load_report_doc",
    "main",
    "paper_tables_text",
    "render_latex",
    "render_markdown",
    "report_json",
]

#: Bump on any report.json layout change; ``--diff`` refuses to compare
#: across versions (apples to apples only).
REPORT_VERSION = 1

#: Threshold for ``--diff``'s op-counter gate: a baseline counter that
#: grew by more than this factor is a regression (matches the CI
#: perf-smoke budget).
DEFAULT_COUNTER_RATIO = 2.0


# ----------------------------------------------------------------------
# Data model
# ----------------------------------------------------------------------


@dataclass
class Section:
    """One numbered table of the report, in all output formats at once.

    ``status`` is ``"ok"`` (has data), ``"empty"`` (no input run feeds
    this table — rendered as a one-line note) or ``"failed"`` (the
    builder raised; ``error`` carries the reason, the rest of the report
    is unaffected).
    """

    number: int
    slug: str
    title: str
    status: str = "ok"
    plain: str = ""
    markdown: str = ""
    latex: str = ""
    data: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    error: str = ""

    def as_doc(self) -> dict:
        return {
            "number": self.number,
            "slug": self.slug,
            "title": self.title,
            "status": self.status,
            "error": self.error,
            "notes": list(self.notes),
            "data": self.data,
        }


@dataclass
class Report:
    """A built report: ordered sections plus input provenance."""

    sections: list[Section]
    inputs: dict

    def section(self, slug: str) -> Section | None:
        for s in self.sections:
            if s.slug == slug:
                return s
        return None


# ----------------------------------------------------------------------
# Loading: journals -> frames
# ----------------------------------------------------------------------


def _parse_sweep_label(label: str) -> dict:
    """``rand17/orders/f=2/n=12`` -> graph/transform/factor/trip fields."""
    parts = label.split("/")
    out: dict[str, object] = {
        "graph": parts[0] if parts else label,
        "transform": parts[1] if len(parts) > 1 else None,
        "factor": None,
        "trip_count": None,
    }
    for p in parts[2:]:
        if p.startswith("f=") and p[2:].lstrip("-").isdigit():
            out["factor"] = int(p[2:])
        elif p.startswith("n=") and p[2:].lstrip("-").isdigit():
            out["trip_count"] = int(p[2:])
    name = str(out["graph"])
    out["seed"] = int(name[4:]) if name.startswith("rand") and name[4:].isdigit() else None
    return out


def _parse_tables_label(label: str) -> dict:
    """``table1:iir`` / ``orders:figure8:f=2`` -> kind/name/factor."""
    parts = label.split(":")
    out: dict[str, object] = {"kind": parts[0], "name": None, "factor": None}
    if len(parts) > 1:
        out["name"] = parts[1]
    for p in parts[2:]:
        if p.startswith("f=") and p[2:].lstrip("-").isdigit():
            out["factor"] = int(p[2:])
    return out


@dataclass
class RunData:
    """The report's in-memory form of everything scanned off disk."""

    scan: MultiRunScan
    runs: Frame  # one row per journal: name, command, finished, ...
    sweep_jobs: Frame  # one row per completed sweep unit (deduped by key)
    table_payloads: dict[str, dict]  # tables-run label -> payload (last wins)
    outcomes: list[tuple[str, dict]]
    benches: list[tuple[str, dict]]


def load_run_data(paths: list) -> RunData:
    """Scan run directories and lift every journal into frames.

    Aggregation is *content-addressed*: completed units are deduplicated
    by their engine cache key across all journals, so re-running the
    report over resumed, sharded or overlapping run directories counts
    each unit of work exactly once, and the aggregates are invariant
    under how the records were distributed across journal files.
    """
    scan = scan_run_dirs(paths)
    run_rows: list[dict] = []
    sweep_records: dict[str, dict] = {}  # key -> job row (dedup across runs)
    table_payloads: dict[str, dict] = {}
    for rd in scan.journals:
        completed = rd.scan.completed()
        submitted = rd.scan.submitted()
        end = next(
            (r["data"] for r in rd.scan.records if r["type"] == "run.end"), None
        )
        done_keys = {
            r["data"]["key"] for r in rd.scan.records if r["type"] == "job.done"
        }
        failed_keys = {
            r["data"]["key"] for r in rd.scan.records if r["type"] == "job.failed"
        }
        all_keys = set(submitted) | set(completed)
        resumed_n = sum(
            1
            for d in completed.values()
            if (d.get("outcome") or {}).get("resumed")
        )
        run_rows.append(
            {
                "name": rd.name,
                "command": rd.command,
                "finished": rd.scan.finished,
                "torn": rd.scan.torn,
                "status": (end or {}).get("status"),
                "submitted": len(all_keys),
                "completed": len(done_keys - failed_keys),
                "failed": len(failed_keys),
                "shed": len(all_keys - set(completed)),
                "resumed": resumed_n,
                "records": len(rd.scan.records),
            }
        )
        for key, data in completed.items():
            label = data.get("label", "")
            payload = data.get("payload") or {}
            outcome = data.get("outcome") or {}
            if rd.command == "tables":
                table_payloads[label] = payload
                continue
            row = {
                "key": key,
                "run": rd.name,
                "label": label,
                "ok": bool(payload.get("ok", False)),
                "status": outcome.get("status")
                if outcome.get("status") not in (None, "ok")
                else ("ok" if payload.get("ok", False) else "error"),
                "resumed": bool(outcome.get("resumed", False)),
                "payload": payload,
            }
            row.update(_parse_sweep_label(label))
            sweep_records[key] = row
    sweep_jobs = Frame.from_records(
        sorted(sweep_records.values(), key=lambda r: (str(r["label"]), str(r["key"]))),
        columns=[
            "key",
            "run",
            "label",
            "graph",
            "transform",
            "factor",
            "trip_count",
            "seed",
            "ok",
            "status",
            "resumed",
            "payload",
        ],
    )
    return RunData(
        scan=scan,
        runs=Frame.from_records(
            sorted(run_rows, key=lambda r: str(r["name"])),
            columns=[
                "name",
                "command",
                "finished",
                "torn",
                "status",
                "submitted",
                "completed",
                "failed",
                "shed",
                "resumed",
                "records",
            ],
        ),
        sweep_jobs=sweep_jobs,
        table_payloads=table_payloads,
        outcomes=scan.outcomes,
        benches=scan.benches,
    )


# ----------------------------------------------------------------------
# Cell plumbing shared by the renderers
# ----------------------------------------------------------------------


def _jsonify_cell(x: object) -> object:
    """A table cell as a JSON-stable value (diff compares these)."""
    if isinstance(x, FailedCell):
        return x.status.upper()
    if isinstance(x, float):
        return f"{x:.1f}"
    if isinstance(x, (int, str)) or x is None:
        return x
    return str(x)


def _table_section(
    number: int,
    slug: str,
    title: str,
    headers: list[str],
    rows: list[list],
    notes: list[str] | None = None,
    plain: str | None = None,
    extra_data: dict | None = None,
) -> Section:
    """Assemble one section from ``(headers, rows)`` in all formats."""
    data = {
        "headers": list(headers),
        "rows": [[_jsonify_cell(c) for c in row] for row in rows],
    }
    if extra_data:
        data.update(extra_data)
    return Section(
        number=number,
        slug=slug,
        title=title,
        status="ok",
        plain=plain if plain is not None else format_table(headers, rows),
        markdown=format_markdown_table(headers, rows),
        latex=format_latex_table(
            headers, rows, caption=title, label=f"tab:{slug}"
        ),
        data=data,
        notes=list(notes or []),
    )


def _empty_section(number: int, slug: str, title: str, why: str) -> Section:
    return Section(
        number=number,
        slug=slug,
        title=title,
        status="empty",
        notes=[why],
    )


# ----------------------------------------------------------------------
# Section builders (each wrapped in error isolation by build_report)
# ----------------------------------------------------------------------


def _build_paper_table(num: str, data: RunData) -> Section:
    number = int(num)
    slug = f"table{num}"
    title = TABLE_TITLES[num]
    payloads = data.table_payloads
    if num in ("1", "2"):
        prefix = f"table{num}:"
        names = [n for n in BENCHMARKS if prefix + n in payloads]
        if not names:
            return _empty_section(number, slug, title, "no tables-run journal provides this table")
        if num == "1":
            rows = [table1_row_from_payload(n, payloads[prefix + n]) for n in names]
            headers, cells = table1_cells(rows)
        else:
            rows = [table2_row_from_payload(n, payloads[prefix + n]) for n in names]
            headers, cells = table2_cells(rows)
        plain = format_table(headers, cells)
        return _table_section(
            number, slug, title, headers, cells, plain=plain,
            extra_data={"benchmarks": names},
        )
    # Tables 3/4: order-comparison columns keyed ``orders:<graph>:f=N``.
    # Table 3 is the Figure-8 DFG (per-iteration CSR pricing); Table 4 is
    # the 4-stage lattice at fixed iteration period (per-copy pricing).
    want_fig8 = num == "3"
    csr_mode = PER_ITERATION if want_fig8 else PER_COPY
    paper = PAPER_TABLE3 if want_fig8 else PAPER_TABLE4
    cols: list[tuple[int, object]] = []
    for label, payload in payloads.items():
        parsed = _parse_tables_label(label)
        if parsed["kind"] != "orders" or parsed["factor"] is None:
            continue
        is_fig8 = parsed["name"] == "figure8"
        if is_fig8 != want_fig8:
            continue
        cols.append(
            (
                parsed["factor"],
                order_comparison_from_payload(
                    parsed["factor"], csr_mode, payload, name=str(parsed["name"])
                ),
            )
        )
    if not cols:
        return _empty_section(number, slug, title, "no tables-run journal provides this table")
    cols.sort(key=lambda kv: kv[0])
    # Paper reference rows carry exactly three factor columns; include
    # them only when the journaled factors match the CLI default, which
    # is also what byte-identity with the live output requires.
    if [f for f, _ in cols] != [2, 3, 4]:
        paper = None
    headers, cells = order_comparison_cells([c for _, c in cols], paper)
    return _table_section(
        number, slug, title, headers, cells,
        extra_data={"factors": [f for f, _ in cols]},
    )


def _reduction_rows(jobs: Frame) -> tuple[list[str], list[list], dict]:
    """Section 5's cells: CSR reduction per transform pair at sweep scale."""
    pairs = [
        ("pipelined", "csr-pipelined", None),
        ("retime-unfold", "csr-retime-unfold", "factor"),
        ("unfold-retime", "csr-unfold-retime", "factor"),
    ]
    headers = ["Transform", "graphs", "size", "CR size", "%Red", "95% CI"]
    rows: list[list] = []
    stats: dict[str, dict] = {}
    for plain_t, csr_t, split in pairs:
        groups: list[tuple[str, Frame]] = []
        sub = jobs.filter(
            lambda r: r["transform"] in (plain_t, csr_t) and r["ok"]
        )
        if split is None:
            groups = [(plain_t, sub)]
        else:
            groups = [
                (f"{plain_t} f={key[0]}", g) for key, g in sub.group_by(split)
            ]
        for label, g in groups:
            plain_sizes: dict[str, int] = {}
            csr_sizes: dict[str, int] = {}
            for r in g.rows():
                size = r["payload"].get("code_size")
                if size is None:
                    continue
                target = plain_sizes if r["transform"] == plain_t else csr_sizes
                target.setdefault(str(r["graph"]), size)
            names = sorted(set(plain_sizes) & set(csr_sizes))
            reductions = [
                100.0 * (plain_sizes[n] - csr_sizes[n]) / plain_sizes[n]
                for n in names
                if plain_sizes[n] > 0
            ]
            if not reductions:
                continue
            s = summarize(reductions)
            stats[label] = {
                "graphs": len(names),
                "mean_size": round(
                    sum(plain_sizes[n] for n in names) / len(names), 2
                ),
                "mean_csr_size": round(
                    sum(csr_sizes[n] for n in names) / len(names), 2
                ),
                "reduction": s,
            }
            rows.append(
                [
                    label,
                    len(names),
                    stats[label]["mean_size"],
                    stats[label]["mean_csr_size"],
                    s["mean"],
                    f"[{s['ci95'][0]:.1f}, {s['ci95'][1]:.1f}]",
                ]
            )
    return headers, rows, stats


def _build_code_size(data: RunData) -> Section:
    number, slug = 5, "code-size"
    title = "Table 5: randomized code-size reduction (sweep scale, 95% CI)"
    jobs = data.sweep_jobs
    if not jobs:
        return _empty_section(number, slug, title, "no sweep journals found")
    headers, rows, stats = _reduction_rows(jobs)
    if not rows:
        return _empty_section(
            number, slug, title, "sweep journals carry no code-size payloads"
        )
    return _table_section(
        number, slug, title, headers, rows, extra_data={"stats": stats},
        notes=[
            "Mean code sizes before/after conditional-register (CR) "
            "rewriting over all journaled random graphs; the interval is "
            "a seeded bootstrap over per-graph reduction percentages."
        ],
    )


def _build_inequality(data: RunData) -> Section:
    number, slug = 6, "inequality"
    title = "Table 6: Theorem 4.4/4.5 inequality margins (S_fr - S_rf)"
    orders = data.sweep_jobs.filter(
        lambda r: r["transform"] == "orders" and r["ok"]
    )
    if not orders:
        return _empty_section(number, slug, title, "no 'orders' sweep jobs found")
    headers = ["factor", "graphs", "violations", "min", "mean", "max", "95% CI"]
    rows: list[list] = []
    per_factor: dict[str, dict] = {}
    total_violations = 0
    for (factor,), g in orders.group_by("factor"):
        margins: list[int] = []
        violations = 0
        for r in g.rows():
            p = r["payload"]
            if "size_unfold_retime" not in p or "size_retime_unfold" not in p:
                continue
            margins.append(p["size_unfold_retime"] - p["size_retime_unfold"])
            if not p.get("inequality_holds", True):
                violations += 1
        if not margins:
            continue
        total_violations += violations
        s = summarize(margins)
        per_factor[str(factor)] = {"violations": violations, **s}
        rows.append(
            [
                factor,
                s["n"],
                violations,
                s["min"],
                s["mean"],
                s["max"],
                f"[{s['ci95'][0]:.1f}, {s['ci95'][1]:.1f}]",
            ]
        )
    if not rows:
        return _empty_section(number, slug, title, "orders payloads carry no sizes")
    return _table_section(
        number, slug, title, headers, rows,
        extra_data={"per_factor": per_factor, "violations": total_violations},
        notes=[
            "The margin is S_fr - S_rf at a matched cycle period; "
            "Theorem 4.4/4.5 proves it is never negative.  "
            f"Violations observed: {total_violations}."
        ],
    )


def _build_oracle(data: RunData) -> Section:
    number, slug = 7, "oracle-gaps"
    title = "Table 7: oracle optimality gaps (sweep --oracle)"
    oracle = data.sweep_jobs.filter(lambda r: r["transform"] == "oracle")
    if not oracle:
        return _empty_section(number, slug, title, "no oracle sweep jobs found")
    gap_rows: list[dict] = []
    gaps: list[int] = []
    proven = violations = 0
    for r in oracle.sort_by("seed", "graph").rows():
        p = r["payload"]
        if r["ok"]:
            gap_rows.append(
                {
                    "seed": r["seed"] if r["seed"] is not None else "",
                    "label": r["graph"],
                    "status": "ok",
                    "period": p.get("period_optimal"),
                    "optimum_lower": p.get("optimum_lower"),
                    "proven": bool(p.get("proven")),
                    "gap": p.get("gap"),
                }
            )
            if p.get("gap") is not None:
                gaps.append(p["gap"])
            proven += bool(p.get("proven"))
            violations += 0 if p.get("bounds_ok", True) else 1
        else:
            gap_rows.append(
                {
                    "seed": r["seed"] if r["seed"] is not None else "",
                    "label": r["graph"],
                    "status": r["status"],
                }
            )
    cells = gap_table_cells(gap_rows)
    headers = list(GAP_TABLE_HEADERS)
    stats = {
        "graphs": len(gap_rows),
        "proven": proven,
        "bound_violations": violations,
        "gap": summarize(gaps) if gaps else None,
        "max_gap": max(gaps) if gaps else 0,
    }
    notes = [
        f"{proven} of {len(gap_rows)} graphs proven optimal; "
        f"max gap {stats['max_gap']}; "
        f"{violations} certified-bound violation(s)."
    ]
    return _table_section(
        number, slug, title, headers, cells,
        extra_data={"stats": stats}, notes=notes,
    )


def _build_accounting(data: RunData) -> Section:
    number, slug = 8, "accounting"
    title = "Table 8: fault, retry and resume accounting"
    rows: list[list] = []
    headers = [
        "run",
        "kind",
        "submitted",
        "completed",
        "failed",
        "shed",
        "resumed",
        "retried",
        "respawned",
        "identity",
    ]
    totals = {"submitted": 0, "completed": 0, "failed": 0, "shed": 0}
    identity_ok = True
    for r in data.runs.rows():
        ok = r["completed"] + r["failed"] + r["shed"] == r["submitted"]
        identity_ok &= ok
        for k in totals:
            totals[k] += r[k]
        rows.append(
            [
                r["name"],
                f"journal:{r['command'] or '?'}",
                r["submitted"],
                r["completed"],
                r["failed"],
                r["shed"],
                r["resumed"],
                "-",
                "-",
                "ok" if ok else "VIOLATED",
            ]
        )
    for name, doc in data.outcomes:
        s = doc.get("stats", {})
        submitted = int(s.get("calls", 0))
        failed = int(s.get("failed", 0)) + int(s.get("timed_out", 0))
        completed = int(s.get("completed", submitted - failed))
        shed = submitted - completed - failed
        ok = completed + failed + shed == submitted and shed >= 0
        identity_ok &= ok
        totals["submitted"] += submitted
        totals["completed"] += completed
        totals["failed"] += failed
        totals["shed"] += max(shed, 0)
        rows.append(
            [
                name,
                "outcomes",
                submitted,
                completed,
                failed,
                shed,
                int(s.get("resumed", 0)),
                int(s.get("retried", 0)),
                int(s.get("respawned", 0)),
                "ok" if ok else "VIOLATED",
            ]
        )
    if not rows:
        return _empty_section(number, slug, title, "no journals or outcomes files found")
    notes = [
        "Identity checked per row: completed + failed + shed == submitted "
        "('shed' counts submitted units with no completion record — "
        "in-flight work lost to a crash)."
    ]
    if not identity_ok:
        notes.append("ACCOUNTING IDENTITY VIOLATED — see rows marked VIOLATED.")
    return _table_section(
        number, slug, title, headers, rows,
        extra_data={"totals": totals, "identity_ok": identity_ok},
        notes=notes,
    )


def _build_bench(data: RunData) -> Section:
    number, slug = 9, "bench"
    title = "Table 9: operation-counter baselines (BENCH_*.json)"
    if not data.benches:
        return _empty_section(number, slug, title, "no BENCH_*.json baselines found")
    headers = ["baseline", "section", "size", "speedup", "counters"]
    rows: list[list] = []
    counters: dict[str, int] = {}
    for name, doc in data.benches:
        bench = str(doc.get("benchmark", "?"))
        results = doc.get("results", {})
        for section in sorted(results):
            entries = results[section]
            if not isinstance(entries, list):
                continue
            for entry in entries:
                if not isinstance(entry, dict):
                    continue
                size = entry.get("size", entry.get("trip_count", ""))
                ctrs = entry.get("counters") or {}
                for cname in sorted(ctrs):
                    counters[f"{bench}:{section}[{size}].{cname}"] = ctrs[cname]
                rows.append(
                    [
                        name,
                        section,
                        size,
                        entry.get("speedup", ""),
                        len(ctrs),
                    ]
                )
    return _table_section(
        number, slug, title, headers, rows,
        extra_data={"counters": counters},
        notes=[
            "Speedups are informative only; --diff gates exclusively on "
            "the deterministic operation counters."
        ],
    )


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------


def _isolated(section_fn, number: int, slug: str, title: str) -> Section:
    """Per-table error isolation: a builder that raises degrades to a
    named FAILED section instead of killing the report."""
    try:
        return section_fn()
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        return Section(
            number=number,
            slug=slug,
            title=title,
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
        )


def build_report(paths: list) -> Report:
    """Load every run under ``paths`` and build all report sections."""
    data = load_run_data(paths)
    builders = [
        (1, "table1", TABLE_TITLES["1"], lambda: _build_paper_table("1", data)),
        (2, "table2", TABLE_TITLES["2"], lambda: _build_paper_table("2", data)),
        (3, "table3", TABLE_TITLES["3"], lambda: _build_paper_table("3", data)),
        (4, "table4", TABLE_TITLES["4"], lambda: _build_paper_table("4", data)),
        (5, "code-size", "Table 5: randomized code-size reduction",
         lambda: _build_code_size(data)),
        (6, "inequality", "Table 6: Theorem 4.4/4.5 inequality margins",
         lambda: _build_inequality(data)),
        (7, "oracle-gaps", "Table 7: oracle optimality gaps",
         lambda: _build_oracle(data)),
        (8, "accounting", "Table 8: fault, retry and resume accounting",
         lambda: _build_accounting(data)),
        (9, "bench", "Table 9: operation-counter baselines",
         lambda: _build_bench(data)),
    ]
    sections = [_isolated(fn, n, slug, title) for n, slug, title, fn in builders]
    inputs = {
        "journals": [j.name for j in data.scan.journals],
        "outcomes": [name for name, _ in data.scan.outcomes],
        "benches": [name for name, _ in data.scan.benches],
        "skipped": [
            {"name": s.name, "reason": s.reason} for s in data.scan.skipped
        ],
    }
    return Report(sections=sections, inputs=inputs)


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------

_TITLE = "Code Size Reduction for Software-Pipelined Loops — run report"


def render_markdown(report: Report) -> str:
    """The full numbered markdown report."""
    lines = [f"# {_TITLE}", ""]
    ins = report.inputs
    lines.append(
        f"Inputs: {len(ins['journals'])} journal(s), "
        f"{len(ins['outcomes'])} outcomes file(s), "
        f"{len(ins['benches'])} benchmark baseline(s), "
        f"{len(ins['skipped'])} skipped."
    )
    lines.append("")
    if ins["skipped"]:
        lines.append("Skipped inputs:")
        lines.extend(f"- `{s['name']}`: {s['reason']}" for s in ins["skipped"])
        lines.append("")
    for s in report.sections:
        lines.append(f"## {s.title}")
        lines.append("")
        if s.status == "failed":
            lines.append(f"**FAILED**: {s.error}")
            lines.append("")
            continue
        if s.status == "empty":
            lines.extend(f"_{note}_" for note in s.notes)
            lines.append("")
            continue
        lines.append(s.markdown)
        lines.append("")
        for note in s.notes:
            lines.append(f"_{note}_")
            lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def render_latex(report: Report) -> str:
    """Every table as a LaTeX fragment (one ``table`` env per section)."""
    lines = [f"% {_TITLE}", f"% report.json version {REPORT_VERSION}", ""]
    for s in report.sections:
        lines.append(f"% --- {s.title} ---")
        if s.status == "failed":
            lines.append(f"% FAILED: {s.error}")
            lines.append("")
            continue
        if s.status == "empty":
            lines.extend(f"% {note}" for note in s.notes)
            lines.append("")
            continue
        lines.append(s.latex)
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def paper_tables_text(report: Report) -> str:
    """The paper-table sections, byte-identical to the live CLI.

    Concatenates ``=== <title> ===`` blocks exactly as
    ``python -m repro.analysis`` prints them for the tables the scanned
    journals provide, so the report can stand in for the CLI in
    regression pins.
    """
    out = []
    for num in ("1", "2", "3", "4"):
        s = report.section(f"table{num}")
        if s is None or s.status != "ok":
            continue
        out.append(f"=== {TABLE_TITLES[num]} ===\n{s.plain}\n\n")
    return "".join(out)


def report_json(report: Report) -> str:
    doc = {
        "version": REPORT_VERSION,
        "title": _TITLE,
        "inputs": report.inputs,
        "sections": [s.as_doc() for s in report.sections],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Diff mode: the regression gate
# ----------------------------------------------------------------------


@dataclass
class DiffResult:
    """Outcome of comparing two reports: regressions gate, notes inform."""

    regressions: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        if self.clean and not self.notes:
            lines = ["report diff: CLEAN (no differences)"]
        elif self.clean:
            lines = [f"report diff: CLEAN ({len(self.notes)} benign difference(s))"]
        else:
            lines = [f"report diff: {len(self.regressions)} REGRESSION(S)"]
        lines.extend(f"  [regression] {r}" for r in self.regressions)
        lines.extend(f"  [note] {n}" for n in self.notes)
        return "\n".join(lines)


def _sections_by_slug(doc: dict) -> dict[str, dict]:
    return {s["slug"]: s for s in doc.get("sections", [])}


def _diff_rows(name: str, a: dict, b: dict, out: DiffResult) -> None:
    """Cell-exact comparison for the deterministic paper tables."""
    a_rows = {tuple(r[:1]): r for r in a.get("rows", [])}
    b_rows = {tuple(r[:1]): r for r in b.get("rows", [])}
    for key, row in a_rows.items():
        other = b_rows.get(key)
        if other is None:
            out.regressions.append(f"{name}: row {key[0]!r} missing from B")
        elif other != row:
            out.regressions.append(
                f"{name}: row {key[0]!r} changed: {row[1:]} -> {other[1:]}"
            )
    for key in b_rows:
        if key not in a_rows:
            out.notes.append(f"{name}: new row {key[0]!r} in B")


def _num(x: object, default: float = 0.0) -> float:
    return float(x) if isinstance(x, (int, float)) else default


def _diff_section_pair(slug: str, a: dict, b: dict, out: DiffResult, ratio: float) -> None:
    name = a.get("title") or slug
    da, db = a.get("data", {}), b.get("data", {})
    if slug in ("table1", "table2", "table3", "table4"):
        _diff_rows(name, da, db, out)
        return
    if slug == "code-size":
        for label, sa in da.get("stats", {}).items():
            sb = db.get("stats", {}).get(label)
            if sb is None:
                out.regressions.append(f"{name}: series {label!r} missing from B")
                continue
            ra = _num(sa.get("reduction", {}).get("mean"))
            rb = _num(sb.get("reduction", {}).get("mean"))
            if rb < ra - 1e-9:
                out.regressions.append(
                    f"{name}: mean reduction for {label!r} fell {ra} -> {rb}"
                )
            elif rb > ra + 1e-9:
                out.notes.append(
                    f"{name}: mean reduction for {label!r} improved {ra} -> {rb}"
                )
        return
    if slug == "inequality":
        va, vb = _num(da.get("violations")), _num(db.get("violations"))
        if vb > va:
            out.regressions.append(
                f"{name}: inequality violations grew {int(va)} -> {int(vb)}"
            )
        for factor, sa in da.get("per_factor", {}).items():
            sb = db.get("per_factor", {}).get(factor)
            if sb is not None and _num(sb.get("min")) < min(0.0, _num(sa.get("min"))):
                out.regressions.append(
                    f"{name}: f={factor} min margin fell below zero "
                    f"({sa.get('min')} -> {sb.get('min')})"
                )
        return
    if slug == "oracle-gaps":
        sa, sb = da.get("stats", {}), db.get("stats", {})
        if _num(sb.get("max_gap")) > _num(sa.get("max_gap")):
            out.regressions.append(
                f"{name}: max oracle gap grew "
                f"{sa.get('max_gap')} -> {sb.get('max_gap')}"
            )
        if _num(sb.get("bound_violations")) > _num(sa.get("bound_violations")):
            out.regressions.append(
                f"{name}: certified-bound violations grew "
                f"{sa.get('bound_violations')} -> {sb.get('bound_violations')}"
            )
        ga, gb = _num(sa.get("graphs"), 1.0), _num(sb.get("graphs"), 1.0)
        if ga and gb and _num(sb.get("proven")) / gb < _num(sa.get("proven")) / ga - 1e-9:
            out.regressions.append(
                f"{name}: proven-optimal fraction fell "
                f"{sa.get('proven')}/{int(ga)} -> {sb.get('proven')}/{int(gb)}"
            )
        return
    if slug == "accounting":
        if da.get("identity_ok", True) and not db.get("identity_ok", True):
            out.regressions.append(
                f"{name}: completed+failed+shed==submitted identity VIOLATED in B"
            )
        ta = da.get("totals", {})
        tb = db.get("totals", {})
        for kind in ("failed", "shed"):
            if _num(tb.get(kind)) > _num(ta.get(kind)):
                out.regressions.append(
                    f"{name}: total {kind} grew "
                    f"{int(_num(ta.get(kind)))} -> {int(_num(tb.get(kind)))}"
                )
        return
    if slug == "bench":
        ca = da.get("counters", {})
        cb = db.get("counters", {})
        for key in sorted(set(ca) & set(cb)):
            va, vb = _num(ca[key]), _num(cb[key])
            if va > 0 and vb > va * ratio:
                out.regressions.append(
                    f"{name}: counter {key} grew {vb / va:.2f}x "
                    f"({int(va)} -> {int(vb)}), budget {ratio}x"
                )
        for key in sorted(set(ca) - set(cb)):
            out.notes.append(f"{name}: counter {key} absent from B")
        return


def diff_reports(
    a_doc: dict, b_doc: dict, counter_ratio: float = DEFAULT_COUNTER_RATIO
) -> DiffResult:
    """Compare two ``report.json`` documents; regressions gate CI.

    Only deterministic quantities are compared — table cells, violation
    counts, gap statistics, accounting identities, op counters — never
    wall times, so two honest runs of the same configuration always diff
    clean, and ``--diff A A`` is empty by construction.
    """
    out = DiffResult()
    if a_doc.get("version") != b_doc.get("version"):
        out.regressions.append(
            f"report version mismatch: {a_doc.get('version')} vs "
            f"{b_doc.get('version')} (regenerate both sides)"
        )
        return out
    a_secs, b_secs = _sections_by_slug(a_doc), _sections_by_slug(b_doc)
    for slug, a in a_secs.items():
        b = b_secs.get(slug)
        name = a.get("title") or slug
        if b is None:
            if a.get("status") == "ok":
                out.regressions.append(f"{name}: section missing from B")
            continue
        status_a, status_b = a.get("status"), b.get("status")
        if status_a == "ok" and status_b == "failed":
            out.regressions.append(
                f"{name}: section FAILED in B ({b.get('error', '')})"
            )
            continue
        if status_a == "ok" and status_b == "empty":
            out.regressions.append(f"{name}: section lost its data in B")
            continue
        if status_a != "ok":
            if status_b == "ok":
                out.notes.append(f"{name}: section gained data in B")
            continue
        _diff_section_pair(slug, a, b, out, counter_ratio)
    return out


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def load_report_doc(path: Path | str) -> dict:
    """A ``report.json`` document for ``--diff``: either a prebuilt file
    or a runs directory to build one from on the fly."""
    path = Path(path)
    if path.is_file():
        return json.loads(path.read_text())
    return json.loads(report_json(build_report([path])))


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Aggregate journaled runs into publication tables "
        "(markdown + LaTeX + report.json); see docs/REPORT.md.",
    )
    parser.add_argument(
        "runs",
        nargs="*",
        metavar="RUNS-DIR",
        help="run directories (journals, --outcomes-out files, BENCH_*.json)",
    )
    parser.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="DIR",
        help="write report.md, report.tex, report.json and paper_tables.txt "
        "into DIR (default: print markdown to stdout)",
    )
    parser.add_argument(
        "--paper-tables",
        action="store_true",
        help="print only the paper-table sections, byte-identical to "
        "`python -m repro.analysis` output for the journaled run",
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        default=None,
        help="regression mode: compare two run directories (or report.json "
        "files); exits 1 on material regressions",
    )
    parser.add_argument(
        "--counter-ratio",
        type=float,
        default=DEFAULT_COUNTER_RATIO,
        metavar="X",
        help="op-counter growth budget for --diff (default 2.0)",
    )
    return parser


def report_main(args: argparse.Namespace) -> int:
    if args.diff is not None:
        if args.runs:
            print("error: --diff takes exactly two paths and no RUNS-DIR",
                  file=sys.stderr)
            return 2
        a = load_report_doc(args.diff[0])
        b = load_report_doc(args.diff[1])
        result = diff_reports(a, b, counter_ratio=args.counter_ratio)
        print(result.summary())
        return 0 if result.clean else 1
    if not args.runs:
        print("error: at least one RUNS-DIR is required (or --diff A B)",
              file=sys.stderr)
        return 2
    report = build_report(args.runs)
    if all(s.status == "empty" for s in report.sections):
        print(
            "error: no usable inputs found "
            f"(skipped {len(report.inputs['skipped'])} file(s))",
            file=sys.stderr,
        )
        for s in report.inputs["skipped"]:
            print(f"  skipped {s['name']}: {s['reason']}", file=sys.stderr)
        return 2
    if args.paper_tables:
        sys.stdout.write(paper_tables_text(report))
        return 0
    if args.out:
        out = Path(args.out)
        artifacts = {
            "report.md": render_markdown(report),
            "report.tex": render_latex(report),
            "report.json": report_json(report),
            "paper_tables.txt": paper_tables_text(report),
        }
        for name, text in artifacts.items():
            atomic_write_text(out / name, text)
        print(
            f"wrote {', '.join(artifacts)} to {out}/",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(render_markdown(report))
    failed = [s for s in report.sections if s.status == "failed"]
    for s in failed:
        print(f"section FAILED: {s.title}: {s.error}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    return report_main(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main(sys.argv[1:]))
