"""Code generation for loops that are both retimed and unfolded, in either
order.

**retime-unfold** (:func:`retimed_unfolded_loop`): retime ``G`` by ``r``
(pipelining the instance space by ``M_r``), then unfold the pipelined steady
state by ``f``.  Layout::

    prologue            sum_v r(v) instructions          (pre)
    unfolded body       f * |V| instructions             (loop, step f)
    leftover iterations ((n - M_r) mod f) * |V|          (post)
    epilogue            sum_v (M_r - r(v)) instructions  (post)

Total ``(M_r + f) * |V| + leftover * |V|`` — Theorem 4.5's ``S_{r,f}`` with
the remainder counted relative to the pipelined trip count ``n - M_r``.

**unfold-retime** (:func:`unfold_retimed_loop`): unfold ``G`` into ``G_f``,
peel the ``n mod f`` remainder instances, then software-pipeline the outer
loop of ``G_f`` with a retiming ``r'`` *of the copies*.  Every copy may have
its own retiming value, so prologue/epilogue cost ``M_{r'} * f * |V|`` and
the total is ``(M_{r'} + 1) * f * |V| + (n mod f) * |V|`` — Theorem 4.4's
``S_{f,r}``.  This is why the paper recommends retiming *before* unfolding.
"""

from __future__ import annotations

from ..graph.dfg import DFG, DFGError
from ..graph.validate import topological_order
from ..retiming.function import Retiming
from ..unfolding.unfold import parse_copy_name, unfold
from .ir import IndexExpr, Instr, Loop, LoopProgram
from .original import compute_for_node

__all__ = ["retimed_unfolded_loop", "unfold_retimed_loop"]


def retimed_unfolded_loop(g: DFG, r: Retiming, f: int, leftover: int = 0) -> LoopProgram:
    """Retime-then-unfold program for retiming ``r`` (of ``g``), factor
    ``f`` and pipelined-trip-count residue ``leftover = (n - M_r) mod f``.
    """
    if f < 1:
        raise DFGError(f"unfolding factor must be >= 1, got {f}")
    if not 0 <= leftover < f:
        raise DFGError(f"leftover must be in [0, {f}), got {leftover}")
    r = r.normalized()
    r.check_legal()
    retimed = r.apply()
    order = topological_order(retimed)
    m_r = r.max_value

    pre: list[Instr] = []
    for i in range(1 - m_r, 1):
        for v in order:
            instance = i + r[v]
            if instance >= 1:
                pre.append(compute_for_node(g, v, IndexExpr.const(instance)))

    body: list[Instr] = []
    for j in range(f):
        for v in order:
            body.append(compute_for_node(g, v, IndexExpr.loop(j + r[v])))

    post: list[Instr] = []
    # Leftover pipelined iterations i = n - M_r - leftover + 1 .. n - M_r.
    for off in range(-m_r - leftover + 1, -m_r + 1):
        for v in order:
            post.append(compute_for_node(g, v, IndexExpr.trip(off + r[v])))
    # Epilogue iterations i = n - M_r + 1 .. n.
    for off in range(-m_r + 1, 1):
        for v in order:
            if off + r[v] <= 0:
                post.append(compute_for_node(g, v, IndexExpr.trip(off + r[v])))

    return LoopProgram(
        name=f"{g.name}.retimed_unfolded_x{f}",
        pre=tuple(pre),
        loop=Loop(
            start=IndexExpr.const(1),
            end=IndexExpr.trip(-m_r - leftover),
            step=f,
            body=tuple(body),
        ),
        post=tuple(post),
        meta={
            "kind": "retimed-unfolded",
            "graph": g.name,
            "retiming": r.as_dict(),
            "max_retiming": m_r,
            "factor": f,
            "residue": leftover,
            "residue_shift": m_r,  # VM contract: (n - M_r) mod f == leftover
            "min_n": m_r + leftover,
        },
    )


def unfold_retimed_loop(g: DFG, r_gf: Retiming, f: int, residue: int = 0) -> LoopProgram:
    """Unfold-then-retime program.

    ``r_gf`` is a (normalized, legal) retiming of ``unfold(g, f)`` — its
    keys are copy names ``v#j``.  ``residue = n mod f`` instances are peeled
    after the pipelined unfolded loop.

    The outer loop variable ``i`` advances by ``f`` per outer iteration;
    copy ``v#j`` with retiming value ``r'`` computes instance
    ``i + f * r' + j``.
    """
    if f < 1:
        raise DFGError(f"unfolding factor must be >= 1, got {f}")
    if not 0 <= residue < f:
        raise DFGError(f"residue must be in [0, {f}), got {residue}")
    gf = unfold(g, f)
    if set(r_gf.graph.node_names()) != set(gf.node_names()):
        raise DFGError("retiming is not over the unfolded copies of g")
    r_gf = r_gf.normalized()
    r_gf.check_legal()
    retimed_gf = r_gf.apply()
    order = [parse_copy_name(c) for c in topological_order(retimed_gf)]
    m = r_gf.max_value

    def rprime(v: str, j: int) -> int:
        from ..unfolding.unfold import copy_name

        return r_gf[copy_name(v, j)]

    pre: list[Instr] = []
    # Outer prologue iterations K = 1 - m .. 0; copy (v, j) active when its
    # outer instance K + r' >= 1; original instance = (K + r' - 1) f + j + 1.
    for k in range(1 - m, 1):
        for v, j in order:
            outer = k + rprime(v, j)
            if outer >= 1:
                pre.append(
                    compute_for_node(g, v, IndexExpr.const((outer - 1) * f + j + 1))
                )

    body = tuple(
        compute_for_node(g, v, IndexExpr.loop(f * rprime(v, j) + j)) for v, j in order
    )

    post: list[Instr] = []
    # Outer epilogue: K = N_out - m + 1 .. N_out with N_out = (n - residue)/f;
    # copy active when outer instance o = K + r' <= N_out, i.e. q = o - N_out
    # in (K + r' - N_out .. 0]; original instance = n - residue + (q-1)f + j + 1.
    for kq in range(-m + 1, 1):  # K = N_out + kq
        for v, j in order:
            q = kq + rprime(v, j)
            if q <= 0:
                post.append(
                    compute_for_node(
                        g, v, IndexExpr.trip(-residue + (q - 1) * f + j + 1)
                    )
                )
    # Remainder instances n - residue + 1 .. n, in original topo order.
    g_order = topological_order(g)
    for off in range(-residue + 1, 1):
        for v in g_order:
            post.append(compute_for_node(g, v, IndexExpr.trip(off)))

    # Last outer loop iteration index: i = (N_out - m - 1) f + 1
    #   = n - residue - (m + 1) f + 1.
    return LoopProgram(
        name=f"{g.name}.unfold_retimed_x{f}",
        pre=tuple(pre),
        loop=Loop(
            start=IndexExpr.const(1),
            end=IndexExpr.trip(-residue - (m + 1) * f + 1),
            step=f,
            body=body,
        ),
        post=tuple(post),
        meta={
            "kind": "unfold-retimed",
            "graph": g.name,
            "retiming": r_gf.as_dict(),
            "max_retiming": m,
            "factor": f,
            "residue": residue,
            "residue_shift": 0,
            "min_n": residue + (m + 1) * f,
        },
    )
