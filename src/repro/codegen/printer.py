"""Human-readable listings of loop programs.

Renders a :class:`~repro.codegen.ir.LoopProgram` in the style of the
paper's code figures (Figures 3, 5, 6, 7), e.g.::

    setup p1 = 0 : -LC
    ...
    for i = -2 to n do
        (p1) A[i+3] = add(E[i-1]; imm=9)
        p1 = p1 - 1
        ...
    end

Used by the examples and by ``repro.analysis`` reports; purely cosmetic.
"""

from __future__ import annotations

from .ir import LoopProgram

__all__ = ["format_program"]


def format_program(program: LoopProgram, indent: str = "    ") -> str:
    """A complete listing of ``program`` as a string."""
    lines: list[str] = [f"// {program.name}  (code size = {program.code_size})"]
    for instr in program.pre:
        lines.append(str(instr))
    loop = program.loop
    step = f" by {loop.step}" if loop.step != 1 else ""
    lines.append(f"for i = {loop.start} to {loop.end}{step} do")
    for instr in loop.body:
        lines.append(f"{indent}{str(instr)}")
    lines.append("end")
    for instr in program.post:
        lines.append(str(instr))
    return "\n".join(lines)
