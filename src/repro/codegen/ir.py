"""Loop-program intermediate representation.

Programs generated from DFGs — the original loop, its software-pipelined
form, the unfolded forms, and the conditional-register (CSR) forms — are all
expressed in one small IR so that a single virtual machine
(:mod:`repro.machine`) can execute and compare them.

A :class:`LoopProgram` has three regions::

    pre:   straight-line code before the loop   (prologue, register setup)
    loop:  for i = start to end step s: body
    post:  straight-line code after the loop    (epilogue, remainder)

Every DFG node ``v`` owns an *array* ``v`` indexed by iteration instance;
the instruction computing instance ``m`` writes ``v[m]``.  Indices are
affine in at most one symbol (:class:`IndexExpr`): the loop variable ``i``
(only inside the body), the trip count ``n`` (typically in ``post``), or a
plain constant (typically in ``pre``).

Conditional execution follows the paper's Section 3.1 exactly, with one
generalization: a :class:`Guard` carries a per-instruction ``offset`` so a
single register can guard all ``f`` copies of an instruction in an unfolded
body (the paper's single-register claim for unfolded loops needs this to be
exact for every ``n mod f``).  A guarded instruction executes iff::

    -LC < p + offset <= 0

where ``p`` is the register's current value and ``LC`` the original trip
count, matching the paper's ``setup p = init : -LC`` window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Union

from ..graph.dfg import DFGError, OpKind

__all__ = [
    "IndexBase",
    "IndexExpr",
    "Operand",
    "Guard",
    "ComputeInstr",
    "SetupInstr",
    "DecInstr",
    "Instr",
    "Loop",
    "LoopProgram",
]


class IndexBase(enum.Enum):
    """Which symbol an :class:`IndexExpr` is relative to."""

    CONST = "const"  # absolute instance number
    I = "i"  # the loop variable
    N = "n"  # the trip count


@dataclass(frozen=True)
class IndexExpr:
    """An affine index ``base + offset`` with ``base`` in {0, i, n}."""

    base: IndexBase
    offset: int

    def resolve(self, i: int | None, n: int) -> int:
        """Concrete index value given loop variable ``i`` and trip count ``n``.

        ``i`` must be provided exactly when ``base`` is ``I`` (instructions
        outside the loop body must not reference the loop variable).
        """
        if self.base is IndexBase.CONST:
            return self.offset
        if self.base is IndexBase.N:
            return n + self.offset
        if i is None:
            raise DFGError("loop-variable index used outside the loop body")
        return i + self.offset

    def __str__(self) -> str:
        if self.base is IndexBase.CONST:
            return str(self.offset)
        sym = self.base.value
        if self.offset == 0:
            return sym
        return f"{sym}{self.offset:+d}"

    @classmethod
    def const(cls, value: int) -> "IndexExpr":
        """Absolute index ``value``."""
        return cls(IndexBase.CONST, value)

    @classmethod
    def loop(cls, offset: int = 0) -> "IndexExpr":
        """Loop-relative index ``i + offset``."""
        return cls(IndexBase.I, offset)

    @classmethod
    def trip(cls, offset: int = 0) -> "IndexExpr":
        """Trip-count-relative index ``n + offset``."""
        return cls(IndexBase.N, offset)


@dataclass(frozen=True)
class Operand:
    """A reference to one array element, ``array[index]``."""

    array: str
    index: IndexExpr

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class Guard:
    """Conditional-execution predicate ``-LC < p + offset <= 0``.

    ``offset = 0`` is the paper's plain predicate; non-zero offsets let all
    copies of an unfolded instruction share one register (Section 3.3).
    """

    register: str
    offset: int = 0

    def __str__(self) -> str:
        if self.offset == 0:
            return f"({self.register})"
        return f"({self.register}{self.offset:+d})"


@dataclass(frozen=True)
class ComputeInstr:
    """A computation ``dest = op(srcs) [imm]``, optionally guarded.

    ``node`` records the originating DFG node for code-size accounting and
    diagnostics; it does not affect execution.
    """

    dest: Operand
    op: OpKind
    imm: int
    srcs: tuple[Operand, ...]
    guard: Guard | None = None
    node: str = ""

    def __str__(self) -> str:
        g = f"{self.guard} " if self.guard else ""
        args = ", ".join(str(s) for s in self.srcs)
        return f"{g}{self.dest} = {self.op.value}({args}; imm={self.imm})"


@dataclass(frozen=True)
class SetupInstr:
    """The paper's proposed ``setup p = init : -LC`` instruction.

    Sets register ``register`` to ``init``; the active window boundary
    ``-LC`` is implicit (the VM knows the trip count).
    """

    register: str
    init: int

    def __str__(self) -> str:
        return f"setup {self.register} = {self.init} : -LC"


@dataclass(frozen=True)
class DecInstr:
    """Explicit decrement ``p = p - amount`` of a conditional register."""

    register: str
    amount: int = 1

    def __str__(self) -> str:
        return f"{self.register} = {self.register} - {self.amount}"


Instr = Union[ComputeInstr, SetupInstr, DecInstr]


@dataclass(frozen=True)
class Loop:
    """The loop region ``for i = start to end step step`` (inclusive end).

    ``start``/``end`` may reference ``n`` (e.g. ``end = n - 3`` for a
    pipelined loop) but not ``i``.
    """

    start: IndexExpr
    end: IndexExpr
    step: int
    body: tuple[Instr, ...]

    def __post_init__(self) -> None:
        if self.step < 1:
            raise DFGError(f"loop step must be >= 1, got {self.step}")
        for bound in (self.start, self.end):
            if bound.base is IndexBase.I:
                raise DFGError("loop bounds cannot reference the loop variable")

    def iter_indices(self, n: int) -> Iterator[int]:
        """Concrete loop-variable values for trip count ``n``."""
        return iter(range(self.start.resolve(None, n), self.end.resolve(None, n) + 1, self.step))

    def trip_count(self, n: int) -> int:
        """Number of iterations executed for trip count ``n``."""
        lo = self.start.resolve(None, n)
        hi = self.end.resolve(None, n)
        if hi < lo:
            return 0
        return (hi - lo) // self.step + 1


@dataclass(frozen=True)
class LoopProgram:
    """A complete loop program: ``pre`` + ``loop`` + ``post``.

    ``meta`` carries free-form provenance (transformation name, retiming,
    unfolding factor) used by reports and tests; it never affects execution.
    """

    name: str
    pre: tuple[Instr, ...]
    loop: Loop
    post: tuple[Instr, ...]
    meta: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    # code-size accounting (the paper's metric)
    # ------------------------------------------------------------------
    @property
    def code_size(self) -> int:
        """Total static instruction count (computes + setups + decrements)."""
        return len(self.pre) + len(self.loop.body) + len(self.post)

    @property
    def compute_size(self) -> int:
        """Static count of computation instructions only."""
        return sum(
            1
            for instr in (*self.pre, *self.loop.body, *self.post)
            if isinstance(instr, ComputeInstr)
        )

    @property
    def overhead_size(self) -> int:
        """Static count of setup/decrement instructions (CSR overhead)."""
        return self.code_size - self.compute_size

    def registers(self) -> list[str]:
        """Conditional registers used, in first-setup order."""
        seen: dict[str, None] = {}
        for instr in (*self.pre, *self.loop.body, *self.post):
            if isinstance(instr, (SetupInstr, DecInstr)):
                seen.setdefault(instr.register, None)
        return list(seen)

    def instructions(self) -> Iterator[Instr]:
        """All instructions in program order (one body copy)."""
        yield from self.pre
        yield from self.loop.body
        yield from self.post
