"""Code generation for software-pipelined (retimed) loops.

Given a normalized legal retiming ``r`` with ``M_r = max_v r(v)``, the
pipelined program executes instance ``i + r(v)`` of node ``v`` at iteration
``i``, for ``i = 1 - M_r .. n``:

* iterations ``1 - M_r .. 0`` form the **prologue** (only nodes with
  ``i + r(v) >= 1`` appear) — emitted as straight-line pre-loop code with
  absolute instance indices, ``sum_v r(v)`` instructions in total;
* iterations ``1 .. n - M_r`` are the **new loop body** (all nodes active);
* iterations ``n - M_r + 1 .. n`` form the **epilogue** (only nodes with
  ``i + r(v) <= n``) — straight-line post-loop code with ``n``-relative
  indices, ``sum_v (M_r - r(v))`` instructions.

Total code size is ``(M_r + 1) * |V|`` — the quantity the paper's Table 1
reports in column "Ret." and the CSR framework then removes.
"""

from __future__ import annotations

from ..graph.dfg import DFG
from ..graph.validate import topological_order
from ..retiming.function import Retiming
from .ir import IndexExpr, Instr, Loop, LoopProgram
from .original import compute_for_node

__all__ = ["pipelined_loop"]


def pipelined_loop(g: DFG, r: Retiming) -> LoopProgram:
    """The software-pipelined program for retiming ``r`` of graph ``g``.

    ``r`` must be legal; it is normalized internally.  The generated program
    is only runnable for trip counts ``n >= M_r`` (recorded as
    ``meta["min_n"]``; the conditional-register form in
    :mod:`repro.core.csr` has no such restriction).
    """
    r = r.normalized()
    r.check_legal()
    retimed = r.apply()
    order = topological_order(retimed)
    m_r = r.max_value

    pre: list[Instr] = []
    for i in range(1 - m_r, 1):
        for v in order:
            instance = i + r[v]
            if instance >= 1:
                pre.append(compute_for_node(g, v, IndexExpr.const(instance)))

    body = tuple(compute_for_node(g, v, IndexExpr.loop(r[v])) for v in order)

    post: list[Instr] = []
    for off in range(-m_r + 1, 1):  # iteration i = n + off
        for v in order:
            if off + r[v] <= 0:  # instance i + r(v) <= n
                post.append(compute_for_node(g, v, IndexExpr.trip(off + r[v])))

    return LoopProgram(
        name=f"{g.name}.pipelined",
        pre=tuple(pre),
        loop=Loop(
            start=IndexExpr.const(1),
            end=IndexExpr.trip(-m_r),
            step=1,
            body=body,
        ),
        post=tuple(post),
        meta={
            "kind": "pipelined",
            "graph": g.name,
            "retiming": r.as_dict(),
            "max_retiming": m_r,
            "min_n": m_r,
        },
    )
