"""Code generation for unfolded (unrolled) loops.

Unfolding by factor ``f`` replicates the loop body ``f`` times; iteration
``i`` (stepping by ``f``) executes instances ``i + j`` for copies
``j = 0 .. f-1``.  When the trip count ``n`` is not divisible by ``f``, the
last ``n mod f`` iterations cannot run inside the unfolded loop and are
peeled into straight-line *remainder* code after it — ``(n mod f) * |V|``
extra instructions, the paper's ``Q_f``.

Because the remainder's length depends on ``n mod f``, the generated
program is specialized on that residue (``meta["residue"]``), exactly as a
loop-versioning compiler would emit.  The conditional-register form in
:mod:`repro.core.unfolded_csr` removes the remainder *and* the residue
specialization with a single register.
"""

from __future__ import annotations

from ..graph.dfg import DFG, DFGError
from ..graph.validate import topological_order
from .ir import IndexExpr, Instr, Loop, LoopProgram
from .original import compute_for_node

__all__ = ["unfolded_loop"]


def unfolded_loop(g: DFG, f: int, residue: int = 0) -> LoopProgram:
    """The unfolded program for factor ``f`` and trip-count residue
    ``residue = n mod f``.

    The program is runnable only for trip counts with that residue (checked
    by the VM via ``meta``).
    """
    if f < 1:
        raise DFGError(f"unfolding factor must be >= 1, got {f}")
    if not 0 <= residue < f:
        raise DFGError(f"residue must be in [0, {f}), got {residue}")
    order = topological_order(g)

    body: list[Instr] = []
    for j in range(f):
        for v in order:
            body.append(compute_for_node(g, v, IndexExpr.loop(j)))

    post: list[Instr] = []
    for off in range(-residue + 1, 1):  # instances n - residue + 1 .. n
        for v in order:
            post.append(compute_for_node(g, v, IndexExpr.trip(off)))

    return LoopProgram(
        name=f"{g.name}.unfolded_x{f}",
        pre=(),
        loop=Loop(
            start=IndexExpr.const(1),
            end=IndexExpr.trip(-residue),
            step=f,
            body=tuple(body),
        ),
        post=tuple(post),
        meta={
            "kind": "unfolded",
            "graph": g.name,
            "factor": f,
            "residue": residue,
            # VM contract: (n - residue_shift) mod factor == residue.
            "residue_shift": 0,
            "min_n": residue if residue else 0,
        },
    )
