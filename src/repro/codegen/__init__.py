"""Loop-program IR and code generators for every transformed loop form.

Programs for: the original loop, the software-pipelined loop
(prologue/body/epilogue), the unfolded loop (+ remainder), and the two
retiming+unfolding orders.  The conditional-register (CSR) forms live in
:mod:`repro.core`, the executing VM in :mod:`repro.machine`.
"""

from .c_emitter import emit_c
from .combined import retimed_unfolded_loop, unfold_retimed_loop
from .ir import (
    ComputeInstr,
    DecInstr,
    Guard,
    IndexBase,
    IndexExpr,
    Instr,
    Loop,
    LoopProgram,
    Operand,
    SetupInstr,
)
from .original import compute_for_node, original_loop
from .pipelined import pipelined_loop
from .printer import format_program
from .unfolded import unfolded_loop

__all__ = [
    "emit_c",
    "retimed_unfolded_loop",
    "unfold_retimed_loop",
    "ComputeInstr",
    "DecInstr",
    "Guard",
    "IndexBase",
    "IndexExpr",
    "Instr",
    "Loop",
    "LoopProgram",
    "Operand",
    "SetupInstr",
    "compute_for_node",
    "original_loop",
    "pipelined_loop",
    "format_program",
    "unfolded_loop",
]
