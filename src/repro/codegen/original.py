"""Code generation for the untransformed (original) loop.

The original loop of a DFG ``G`` executes, for ``i = 1 .. n``, every node
``v`` once per iteration in a topological order of the zero-delay subgraph;
node ``v`` computes ``v[i]`` from ``u[i - d(e)]`` for each in-edge
``e(u -> v)``.  This program is the semantic reference every transformation
is checked against.
"""

from __future__ import annotations

from ..graph.dfg import DFG
from ..graph.validate import topological_order
from .ir import ComputeInstr, Guard, IndexExpr, Loop, LoopProgram, Operand

__all__ = ["original_loop", "compute_for_node"]


def compute_for_node(
    g: DFG,
    node: str,
    dest_index: IndexExpr,
    guard: Guard | None = None,
) -> ComputeInstr:
    """The :class:`ComputeInstr` computing instance ``dest_index`` of ``node``.

    Source operands are derived from the node's in-edges in insertion order
    (the operand order fixed by the DFG): in-edge ``e(u -> v)`` with
    *original* delay ``d`` contributes ``u[dest_index - d]``.  All code
    generators share this helper, so instance-level data dependencies are
    identical across every program form by construction.
    """
    n = g.node(node)
    srcs = tuple(
        Operand(e.src, IndexExpr(dest_index.base, dest_index.offset - e.delay))
        for e in g.in_edges(node)
    )
    return ComputeInstr(
        dest=Operand(node, dest_index),
        op=n.op,
        imm=n.imm,
        srcs=srcs,
        guard=guard,
        node=node,
    )


def original_loop(g: DFG) -> LoopProgram:
    """The reference program: ``for i = 1 to n``, all nodes in topo order."""
    order = topological_order(g)
    body = tuple(compute_for_node(g, v, IndexExpr.loop(0)) for v in order)
    return LoopProgram(
        name=f"{g.name}.original",
        pre=(),
        loop=Loop(start=IndexExpr.const(1), end=IndexExpr.trip(0), step=1, body=body),
        post=(),
        meta={"kind": "original", "graph": g.name},
    )
