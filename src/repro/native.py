"""Optional C builds of the two hottest numeric inner kernels.

Both vectorized engines bottom out in one tight numpy expression each:

* the warm-started feasibility solver's min-plus pass
  ``min(before, (before[:, None] + C).min(axis=0))`` — which materializes
  an O(V²) temporary per pass;
* the trace VM backend's lane-wise ``a * b mod 2**61 - 1``
  (:func:`repro.machine.trace._mulmod`) — five multiplies and a dozen
  shifts per lane because uint64 lanes have no 128-bit product.

Setting ``REPRO_NATIVE_KERNELS=1`` compiles both as a tiny shared library
with the system C compiler on first use (cached by source hash in a temp
directory) and routes the two call sites through it.  The C kernels are
**bit-identical by construction**: the min-plus pass performs exactly the
same exact-integer min reduction (no reassociation hazard — min is
associative and no intermediate can overflow, by the same ``(|V| + 2) *
max|w| < 2**60`` bound the numpy path enforces), and the modular product
is value-exact via ``__int128``.  The switch is off by default, and *any*
failure — no compiler, sandboxed filesystem, load error — permanently
falls back to the numpy paths for the process, so the pure-python/numpy
behavior is always available and always the reference.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path

try:  # pragma: no cover - numpy is a baked-in dependency
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["native_enabled", "native_available", "minplus_pass", "mulmod61"]

_SOURCE = r"""
#include <stdint.h>

void minplus_pass(const int64_t *before, const int64_t *cmat,
                  int64_t *out, int64_t n) {
    for (int64_t j = 0; j < n; ++j) out[j] = before[j];
    for (int64_t i = 0; i < n; ++i) {
        int64_t di = before[i];
        const int64_t *row = cmat + i * n;
        for (int64_t j = 0; j < n; ++j) {
            int64_t cand = di + row[j];
            if (cand < out[j]) out[j] = cand;
        }
    }
}

void mulmod61(const uint64_t *a, const uint64_t *b, uint64_t *out,
              int64_t n) {
    const uint64_t M = (((uint64_t)1) << 61) - 1;
    for (int64_t i = 0; i < n; ++i) {
        unsigned __int128 t =
            (unsigned __int128)a[i] * (unsigned __int128)b[i];
        uint64_t r = (uint64_t)(t & M) + (uint64_t)(t >> 61);
        r = (r & M) + (r >> 61);
        out[i] = r >= M ? r - M : r;
    }
}
"""

_ENV = "REPRO_NATIVE_KERNELS"
_LOCK = threading.Lock()
_LIB: ctypes.CDLL | None = None
_FAILED = False


def native_enabled() -> bool:
    """Whether the ``REPRO_NATIVE_KERNELS`` switch is on (re-read live)."""
    return os.environ.get(_ENV, "").lower() in ("1", "true", "on")


def _compiler() -> str:
    return os.environ.get("CC") or "cc"


def _build() -> ctypes.CDLL | None:
    """Compile (or reuse) the kernel library; ``None`` on any failure."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = Path(
        os.environ.get("REPRO_NATIVE_CACHE")
        or Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"
    )
    so_path = cache / f"kernels-{digest}.so"
    try:
        if not so_path.exists():
            cache.mkdir(parents=True, exist_ok=True)
            src_path = cache / f"kernels-{digest}.c"
            src_path.write_text(_SOURCE)
            with tempfile.NamedTemporaryFile(
                dir=cache, suffix=".so", delete=False
            ) as tmp:
                tmp_path = Path(tmp.name)
            result = subprocess.run(
                [
                    _compiler(),
                    "-O2",
                    "-shared",
                    "-fPIC",
                    "-o",
                    str(tmp_path),
                    str(src_path),
                ],
                capture_output=True,
                timeout=60,
            )
            if result.returncode != 0:
                tmp_path.unlink(missing_ok=True)
                return None
            os.replace(tmp_path, so_path)  # atomic publish
        lib = ctypes.CDLL(str(so_path))
    except Exception:
        return None
    i64p = ctypes.POINTER(ctypes.c_int64)
    u64p = ctypes.POINTER(ctypes.c_uint64)
    lib.minplus_pass.argtypes = [i64p, i64p, i64p, ctypes.c_int64]
    lib.minplus_pass.restype = None
    lib.mulmod61.argtypes = [u64p, u64p, u64p, ctypes.c_int64]
    lib.mulmod61.restype = None
    return lib


def _lib() -> ctypes.CDLL | None:
    global _LIB, _FAILED
    if _LIB is not None:
        return _LIB
    if _FAILED:
        return None
    with _LOCK:
        if _LIB is None and not _FAILED:
            _LIB = _build()
            if _LIB is None:
                _FAILED = True  # don't retry a broken toolchain per call
    return _LIB


def native_available() -> bool:
    """Whether the switch is on *and* the library compiled and loaded."""
    return native_enabled() and _np is not None and _lib() is not None


def minplus_pass(before, C):
    """One dense Bellman–Ford pass
    ``min(before, (before[:, None] + C).min(axis=0))``, or ``None`` when
    the native path is unavailable (caller runs the numpy expression)."""
    if not native_enabled() or _np is None:
        return None
    lib = _lib()
    if lib is None:
        return None
    n = before.shape[0]
    before = _np.ascontiguousarray(before, dtype=_np.int64)
    C = _np.ascontiguousarray(C, dtype=_np.int64)
    out = _np.empty(n, dtype=_np.int64)
    i64p = ctypes.POINTER(ctypes.c_int64)
    lib.minplus_pass(
        before.ctypes.data_as(i64p),
        C.ctypes.data_as(i64p),
        out.ctypes.data_as(i64p),
        n,
    )
    return out


def mulmod61(a, b):
    """Lane-wise ``a * b mod 2**61 - 1`` on uint64 arrays, or ``None``
    when the native path is unavailable (caller runs the split multiply).

    Broadcasts like the numpy path, so scalar-vector products work."""
    if not native_enabled() or _np is None:
        return None
    lib = _lib()
    if lib is None:
        return None
    a, b = _np.broadcast_arrays(a, b)
    shape = a.shape
    a = _np.ascontiguousarray(a, dtype=_np.uint64).ravel()
    b = _np.ascontiguousarray(b, dtype=_np.uint64).ravel()
    out = _np.empty(a.size, dtype=_np.uint64)
    u64p = ctypes.POINTER(ctypes.c_uint64)
    lib.mulmod61(
        a.ctypes.data_as(u64p),
        b.ctypes.data_as(u64p),
        out.ctypes.data_as(u64p),
        a.size,
    )
    return out.reshape(shape)
