"""Conditional (predicate) register file.

Implements the paper's Section 3.1 semantics: a conditional register holds a
small integer; a guarded instruction with guard ``(p, offset)`` executes iff

    -LC < p + offset <= 0

where ``LC`` is the original loop trip count (the paper's ``setup p = v :
-LC`` boundary, "the comparison between the value of conditional register
and the negative loop counter is implemented by hardware").  Registers are
modified only by ``setup`` (initialize) and explicit decrement instructions.
"""

from __future__ import annotations

from ..graph.dfg import DFGError
from ..codegen.ir import Guard

__all__ = ["ConditionalRegisterFile", "MachineError"]


class MachineError(DFGError):
    """Raised for invalid machine operations (unknown register, bad trip count)."""


class ConditionalRegisterFile:
    """The set of conditional registers of the virtual DSP machine.

    The file size is unbounded by default; pass ``capacity`` to model an
    architecture with a fixed number of predicate registers (the paper's
    ``P_r`` resource) — ``setup`` of a fresh register beyond the capacity
    raises :class:`MachineError`, which the register-constrained experiments
    rely on.
    """

    def __init__(self, trip_count: int, capacity: int | None = None) -> None:
        if trip_count < 0:
            raise MachineError(f"trip count must be >= 0, got {trip_count}")
        if capacity is not None and capacity < 0:
            raise MachineError(f"capacity must be >= 0, got {capacity}")
        self._n = trip_count
        self._capacity = capacity
        self._values: dict[str, int] = {}

    @property
    def trip_count(self) -> int:
        """The ``LC`` boundary shared by every register."""
        return self._n

    def setup(self, register: str, init: int) -> None:
        """Execute ``setup register = init : -LC``."""
        if (
            self._capacity is not None
            and register not in self._values
            and len(self._values) >= self._capacity
        ):
            raise MachineError(
                f"conditional register file exhausted: cannot allocate "
                f"{register!r} beyond capacity {self._capacity}"
            )
        self._values[register] = init

    def decrement(self, register: str, amount: int = 1) -> None:
        """Execute ``register = register - amount``."""
        if register not in self._values:
            raise MachineError(f"decrement of register {register!r} before setup")
        self._values[register] -= amount

    def value(self, register: str) -> int:
        """Current value of ``register``."""
        try:
            return self._values[register]
        except KeyError:
            raise MachineError(f"read of register {register!r} before setup") from None

    def is_active(self, guard: Guard | None) -> bool:
        """Whether a guarded instruction executes right now.

        Unguarded instructions (``guard is None``) always execute.
        """
        if guard is None:
            return True
        p = self.value(guard.register) + guard.offset
        return -self._n < p <= 0

    def snapshot(self) -> dict[str, int]:
        """Current register values (for traces and tests)."""
        return dict(self._values)
