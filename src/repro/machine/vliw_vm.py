"""Cycle-accurate execution of VLIW-packed programs.

The word packer (:mod:`repro.schedule.vliw`) claims its packings respect
all dependencies.  This module *checks that claim semantically*: it
executes a packed program word by word with true VLIW commit semantics —
**all reads in a word observe the machine state from before the word**
(operand reads, guard reads and register updates commit together at word
boundaries).  If the packer ever co-scheduled a producer with its consumer,
the consumer reads the stale value and the result diverges from the
sequential VM, which the test-suite asserts never happens.

The executor also reports the exact cycle count, making
:func:`repro.schedule.vliw.estimate_cycles` a theorem rather than an
estimate (one word = one cycle; both are asserted equal in tests).

Like the sequential VM, the default execution path pre-compiles every
packed word's slots into flat dispatch tuples (:mod:`repro.machine.dispatch`)
so the per-word loop carries no ``isinstance`` chains or repeated attribute
lookups; ``dispatch=False`` forces the original dataclass-walking
interpreter, against which the compiled path is differential-tested
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..codegen.ir import ComputeInstr, DecInstr, LoopProgram, SetupInstr
from ..graph.dfg import DFGError, evaluate_op
from ..observability import OBS, span
from ..schedule.resources import ResourceModel
from ..schedule.vliw import VliwSchedule, pack_body, pack_straightline
from .dispatch import _COMPUTE, _CONST, _LOOP, _SETUP, _TRIP, _compile_region
from .registers import ConditionalRegisterFile, MachineError
from .trace import packed_body_trace
from .vm import default_initial

__all__ = ["PackedResult", "run_packed"]


@dataclass
class PackedResult:
    """Outcome of a packed execution: array state plus the cycle count."""

    arrays: dict[str, dict[int, int]]
    cycles: int
    executed: int
    disabled: int


def run_packed(
    program: LoopProgram,
    n: int,
    resources: ResourceModel,
    control_slots: int = 1,
    initial: Callable[[str, int], int] = default_initial,
    dispatch: bool = True,
) -> PackedResult:
    """Pack ``program`` for ``resources`` and execute it word by word."""
    from ..machine.vm import _check_meta  # shared trip-count contract

    _check_meta(program, n)
    pre = pack_straightline(program.pre, resources, control_slots)
    body = pack_body(program, resources, control_slots)
    post = pack_straightline(program.post, resources, control_slots)

    if dispatch:
        return _run_packed_dispatch(program, n, pre, body, post, initial)
    return _run_packed_reference(program, n, pre, body, post, initial)


def _run_packed_dispatch(
    program: LoopProgram,
    n: int,
    pre: VliwSchedule,
    body: VliwSchedule,
    post: VliwSchedule,
    initial: Callable[[str, int], int],
) -> PackedResult:
    """Word-by-word execution over pre-compiled slot tuples."""
    if n < 0:
        raise MachineError(f"trip count must be >= 0, got {n}")
    pre_words = [_compile_region(w.slots, in_body=False) for w in pre.words]
    body_words = [_compile_region(w.slots, in_body=True) for w in body.words]
    post_words = [_compile_region(w.slots, in_body=False) for w in post.words]

    name = program.name
    neg_n = -n
    reg_values: dict[str, int] = {}
    arrays: dict[str, dict[int, int]] = {}
    arrays_get = arrays.get
    executed = 0
    disabled = 0
    cycles = 0

    def run_words(words: list[list[tuple]], i: int | None) -> None:
        nonlocal executed, disabled, cycles
        for code in words:
            cycles += 1
            # Phase 1: read — evaluate every slot against pre-word state.
            staged_writes: list[tuple[str, int, int]] = []
            staged_regs: list[tuple[str, int]] = []
            for op in code:
                kind = op[0]
                if kind == _COMPUTE:
                    greg = op[1]
                    if greg is not None:
                        try:
                            p = reg_values[greg]
                        except KeyError:
                            raise MachineError(
                                f"read of register {greg!r} before setup"
                            ) from None
                        p += op[2]
                        if not (neg_n < p <= 0):
                            disabled += 1
                            continue
                    dbase = op[4]
                    if dbase == _CONST:
                        dest_index = op[5]
                    elif dbase == _LOOP:
                        dest_index = i + op[5]
                    elif dbase == _TRIP:
                        dest_index = n + op[5]
                    else:
                        raise DFGError(
                            "loop-variable index used outside the loop body"
                        )
                    if not 1 <= dest_index <= n:
                        raise MachineError(
                            f"{name} (packed): write to "
                            f"{op[3]}[{dest_index}] outside 1..{n}"
                        )
                    values = []
                    for sarr, sbase, soff in op[7]:
                        if sbase == _CONST:
                            idx = soff
                        elif sbase == _LOOP:
                            idx = i + soff
                        elif sbase == _TRIP:
                            idx = n + soff
                        else:
                            raise DFGError(
                                "loop-variable index used outside the loop body"
                            )
                        src_store = arrays_get(sarr)
                        if src_store is not None and idx in src_store:
                            values.append(src_store[idx])
                        else:
                            values.append(initial(sarr, idx))
                    staged_writes.append(
                        (op[3], dest_index, op[6](values, dest_index))
                    )
                elif kind == _SETUP:
                    staged_regs.append((op[1], op[2]))
                else:  # _DEC — reads the pre-word register value
                    reg = op[1]
                    try:
                        val = reg_values[reg]
                    except KeyError:
                        raise MachineError(
                            f"read of register {reg!r} before setup"
                        ) from None
                    staged_regs.append((reg, val - op[2]))
            # Phase 2: commit — writes and register updates land together.
            for array, index, value in staged_writes:
                store = arrays.setdefault(array, {})
                if index in store:
                    raise MachineError(
                        f"{name} (packed): {array}[{index}] computed twice"
                    )
                store[index] = value
                executed += 1
            for reg, val in staged_regs:
                reg_values[reg] = val

    with span("vm.packed_run", program=program.name, n=n) as sp:
        run_words(pre_words, None)
        handled = packed_body_trace(
            body_words, program.loop, n, reg_values, arrays, initial
        )
        if handled is None:
            for i in program.loop.iter_indices(n):
                run_words(body_words, i)
        else:
            executed += handled[0]
            disabled += handled[1]
            cycles += program.loop.trip_count(n) * len(body_words)
        run_words(post_words, None)
        sp.set(cycles=cycles, executed=executed)

    _emit_metrics(cycles, executed)
    return PackedResult(
        arrays=arrays, cycles=cycles, executed=executed, disabled=disabled
    )


def _run_packed_reference(
    program: LoopProgram,
    n: int,
    pre: VliwSchedule,
    body: VliwSchedule,
    post: VliwSchedule,
    initial: Callable[[str, int], int],
) -> PackedResult:
    """The original dataclass-walking interpreter (differential reference)."""
    regs = ConditionalRegisterFile(trip_count=n)
    arrays: dict[str, dict[int, int]] = {}
    executed = 0
    disabled = 0
    cycles = 0

    def read(array: str, index: int) -> int:
        store = arrays.get(array)
        if store is not None and index in store:
            return store[index]
        return initial(array, index)

    def run_words(schedule: VliwSchedule, i: int | None) -> None:
        nonlocal executed, disabled, cycles
        for word in schedule.words:
            cycles += 1
            # Phase 1: read — evaluate every slot against pre-word state.
            staged_writes: list[tuple[str, int, int]] = []
            staged_regs: list[tuple[str, int, bool]] = []  # (reg, val, is_setup)
            for instr in word.slots:
                if isinstance(instr, SetupInstr):
                    staged_regs.append((instr.register, instr.init, True))
                elif isinstance(instr, DecInstr):
                    staged_regs.append(
                        (instr.register, regs.value(instr.register) - instr.amount, False)
                    )
                else:
                    assert isinstance(instr, ComputeInstr)
                    if not regs.is_active(instr.guard):
                        disabled += 1
                        continue
                    dest_index = instr.dest.index.resolve(i, n)
                    if not 1 <= dest_index <= n:
                        raise MachineError(
                            f"{program.name} (packed): write to "
                            f"{instr.dest.array}[{dest_index}] outside 1..{n}"
                        )
                    values = [read(s.array, s.index.resolve(i, n)) for s in instr.srcs]
                    staged_writes.append(
                        (
                            instr.dest.array,
                            dest_index,
                            evaluate_op(instr.op, instr.imm, values, dest_index),
                        )
                    )
            # Phase 2: commit — writes and register updates land together.
            for array, index, value in staged_writes:
                store = arrays.setdefault(array, {})
                if index in store:
                    raise MachineError(
                        f"{program.name} (packed): {array}[{index}] computed twice"
                    )
                store[index] = value
                executed += 1
            for reg, val, _is_setup in staged_regs:
                # Both setups and staged decrements commit as direct stores.
                regs.setup(reg, val)

    with span("vm.packed_run", program=program.name, n=n) as sp:
        run_words(pre, None)
        for i in program.loop.iter_indices(n):
            run_words(body, i)
        run_words(post, None)
        sp.set(cycles=cycles, executed=executed)

    _emit_metrics(cycles, executed)
    return PackedResult(
        arrays=arrays, cycles=cycles, executed=executed, disabled=disabled
    )


def _emit_metrics(cycles: int, executed: int) -> None:
    if OBS.enabled:
        m = OBS.metrics
        m.counter("vliw.cycles", "VLIW words committed").inc(cycles)
        m.counter("vliw.instructions.executed", "packed computes executed").inc(
            executed
        )
