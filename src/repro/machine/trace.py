"""Execution traces of the virtual machine.

A trace records, in execution order, every *executed* compute instruction
(disabled guarded instructions are recorded separately), which lets tests
assert not only final array equality but also execution-order properties —
e.g. that instance ``m`` of a producer runs before its consumers, the
substance of the paper's Theorems 4.1/4.2/4.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceEvent", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed compute: node name, instance written, region of origin.

    ``region`` is ``"pre"``, ``"body"`` or ``"post"``; ``i`` is the loop
    variable value for body events and ``None`` elsewhere.
    """

    node: str
    instance: int
    region: str
    i: int | None


@dataclass
class ExecutionTrace:
    """Ordered record of one program execution."""

    events: list[TraceEvent] = field(default_factory=list)
    disabled: int = 0  # guarded computes whose predicate was off

    def record(self, node: str, instance: int, region: str, i: int | None) -> None:
        """Append one executed compute."""
        self.events.append(TraceEvent(node=node, instance=instance, region=region, i=i))

    def order_of(self) -> dict[tuple[str, int], int]:
        """Map ``(node, instance) -> position`` in execution order."""
        return {(e.node, e.instance): k for k, e in enumerate(self.events)}

    def instances_of(self, node: str) -> list[int]:
        """Instances of ``node`` in execution order."""
        return [e.instance for e in self.events if e.node == node]

    def __len__(self) -> int:
        return len(self.events)
