"""Execution traces and the trace-compiling masked-vector backend.

Two things live here:

* :class:`TraceEvent` / :class:`ExecutionTrace` — the per-instruction
  execution record the reference interpreter produces on request, used by
  tests to assert execution-order properties (the substance of the paper's
  Theorems 4.1/4.2/4.6).

* The **trace compiler** — :func:`body_hook` (sequential VM) and
  :func:`packed_body_trace` (VLIW VM).  Both VMs spend essentially all
  their time re-running the same compiled loop body once per iteration.
  The trace compiler analyzes that body *once* and, when it can prove the
  whole trip vectorizable, replaces the per-iteration loop with a handful
  of numpy array operations over the full trip count:

  - every guard ``-n < p + offset <= 0`` is an affine progression in the
    iteration number (registers only move by a constant net decrement per
    iteration), so each guarded instruction's active iterations form one
    exact closed-form **window** ``[klo, khi]`` — disabled instances are
    never materialized, they are the complement of the window;
  - window boundaries cut the trip into **segments** inside which every
    instruction is either fully active or fully inactive; per segment the
    loop-carried dependence graph is condensed (Tarjan SCC) and acyclic
    components evaluate as single vectorized expressions over iteration
    vectors, while cyclic components (`x[i]` feeding `x[i-1]` …) are
    solved as affine recurrences ``s_{k+1} = T s_k + c_k`` over the
    component's state basis with a blocked matrix scan — exact modular
    integer arithmetic throughout (``2**61 - 1``, the VM modulus, with a
    split-multiply ``mulmod`` on uint64 lanes);
  - anything the analysis cannot prove — multiple writers of one array,
    non-affine recurrences (state × state products), malformed arities,
    write collisions or range violations, registers read before setup —
    makes the hook return ``None`` **before touching any machine state**,
    and the caller falls back to the dispatch interpreter, which remains
    the semantics reference (bit-identical results, errors and counters).

  ``REPRO_VM_TRACE=0`` disables the backend entirely (every hook returns
  ``None``), which is also the differential-testing lever.
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass, field
from math import isqrt

from ..graph.dfg import MODULUS, OpKind
from ..native import mulmod61 as _native_mulmod
from ..observability import count
from .dispatch import _DEC, _ERR, _LOOP, _SETUP, _TRIP

try:  # pragma: no cover - numpy is a baked-in dependency
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["TraceEvent", "ExecutionTrace", "body_hook", "packed_body_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed compute: node name, instance written, region of origin.

    ``region`` is ``"pre"``, ``"body"`` or ``"post"``; ``i`` is the loop
    variable value for body events and ``None`` elsewhere.
    """

    node: str
    instance: int
    region: str
    i: int | None


@dataclass
class ExecutionTrace:
    """Ordered record of one program execution."""

    events: list[TraceEvent] = field(default_factory=list)
    disabled: int = 0  # guarded computes whose predicate was off

    def record(self, node: str, instance: int, region: str, i: int | None) -> None:
        """Append one executed compute."""
        self.events.append(TraceEvent(node=node, instance=instance, region=region, i=i))

    def order_of(self) -> dict[tuple[str, int], int]:
        """Map ``(node, instance) -> position`` in execution order."""
        return {(e.node, e.instance): k for k, e in enumerate(self.events)}

    def instances_of(self, node: str) -> list[int]:
        """Instances of ``node`` in execution order."""
        return [e.instance for e in self.events if e.node == node]

    def __len__(self) -> int:
        return len(self.events)


# --------------------------------------------------------------------------
# Trace-compiling vector backend
# --------------------------------------------------------------------------

_M = (1 << 61) - 1  # must equal the VM modulus for the mulmod kernel

#: Trips longer than this fall back to the interpreter rather than
#: materializing per-iteration vectors (memory guard).
_MAX_TRACE_TRIP = 5_000_000

#: Cyclic components with a state basis larger than this fall back (the
#: blocked scan is O(d^2) numpy calls per step; real pipelined filter
#: bodies have d of 1-5).
_MAX_STATE_DIM = 16

if _np is not None:
    _UM = _np.uint64(_M)
    _U_MASK32 = _np.uint64(0xFFFFFFFF)
    _U_MASK29 = _np.uint64((1 << 29) - 1)
    _U32 = _np.uint64(32)
    _U29 = _np.uint64(29)
    _U61 = _np.uint64(61)
    _U3 = _np.uint64(3)


def _trace_enabled() -> bool:
    return os.environ.get("REPRO_VM_TRACE", "").lower() not in ("0", "false", "off")


class _Fallback(Exception):
    """Internal: abort vector evaluation and fall back to dispatch."""


class _NonAffine(Exception):
    """Internal: a cyclic component's recurrence is not affine in its state."""


class _C:
    """One analyzable body compute (static facts only; no run state)."""

    __slots__ = (
        "ordinal",  # index into the computes list
        "pos",  # visibility group: word index (VLIW) / instr index (seq)
        "guard_reg",
        "guard_off",
        "base_dec",  # net decrements of guard_reg by *prior* groups
        "array",
        "doff",  # dest offset (dest index = i + doff)
        "op",
        "imm",
        "srcs",  # tuple of (array, base_code, offset)
    )


def _analyze(groups: list[list[tuple]]):
    """Static analysis of a compiled loop body, or ``None`` if untraceable.

    ``groups`` are the body's visibility groups: one singleton group per
    instruction for the sequential VM, one group per packed word for the
    VLIW VM.  Within a VLIW word all reads see pre-word state and register
    commits land last-write-wins — both captured by the group structure
    (``pos`` ordering for value visibility, last-wins for per-group
    decrement nets).

    Returns ``(computes, writer, dec_total)`` where ``writer`` maps array
    name to its unique body compute and ``dec_total`` maps register name
    to its net decrement per iteration.
    """
    computes: list[_C] = []
    writer: dict[str, _C] = {}
    acc: dict[str, int] = {}  # cumulative decrement nets of prior groups
    for pos, group in enumerate(groups):
        group_net: dict[str, int] = {}
        for op in group:
            kind = op[0]
            if kind == _SETUP:
                return None  # register setup mid-loop: interpreter territory
            if kind == _DEC:
                # Within a group, commits override: the last amount wins
                # (exactly the VLIW staged-commit behavior; trivially right
                # for the sequential VM's singleton groups).
                group_net[op[1]] = op[2]
                continue
            # _COMPUTE
            if op[4] != _LOOP:
                return None  # constant/N-based dest: time-dependent aliasing
            instr = op[8]
            opk = instr.op
            arity = len(op[7])
            if opk is OpKind.MAC:
                if arity < 2:
                    return None  # raises at execution; let dispatch raise it
            elif opk is OpKind.COPY:
                if arity != 1:
                    return None
            elif opk is OpKind.SOURCE:
                if arity != 0:
                    return None
            elif opk not in (OpKind.ADD, OpKind.SUB, OpKind.MUL):
                return None
            arr = op[3]
            if arr in writer:
                return None  # multiple body writers of one array
            c = _C()
            c.ordinal = len(computes)
            c.pos = pos
            c.guard_reg = op[1]
            c.guard_off = op[2]
            c.base_dec = acc.get(op[1], 0) if op[1] is not None else 0
            c.array = arr
            c.doff = op[5]
            c.op = opk
            c.imm = instr.imm
            c.srcs = op[7]
            computes.append(c)
            writer[arr] = c
        for reg, amount in group_net.items():
            acc[reg] = acc.get(reg, 0) + amount
    for c in computes:
        for sarr, sbase, _soff in c.srcs:
            if sbase == _ERR:
                return None  # raises at execution
            if sbase != _LOOP and sarr in writer:
                return None  # fixed cell of a moving array: time-dependent
    if any(amount < 0 for amount in acc.values()):
        return None  # incrementing register: guard windows not an interval
    return computes, writer, acc


class _Rt:
    """Per-run evaluation context (never aliases machine state mutably)."""

    __slots__ = (
        "writer",
        "windows",  # ordinal -> (klo, khi); empty windows are (0, -1)
        "out_vec",  # array -> uint64[T] of produced values (window cells)
        "arrays",  # the VM's array state *before* the loop (read-only here)
        "start_i",
        "n",
        "initial",
        "default_init",  # the default_initial function, or None if custom
    )


def _prestate_scalar(rt: _Rt, arr: str, cell: int) -> int:
    """Value a body read of ``arr[cell]`` sees when no body write reaches it."""
    store = rt.arrays.get(arr)
    if store is not None and cell in store:
        return store[cell] % _M
    if rt.default_init is not None:
        # default_initial(arr, c) == default_initial(arr, 0) + 7*c exactly.
        return (rt.default_init(arr, 0) + 7 * cell) % _M
    try:
        return rt.initial(arr, cell) % _M
    except Exception:
        # A raising/odd initial function: let the interpreter surface it.
        raise _Fallback from None


def _prestate_vec(rt: _Rt, arr: str, c0: int, c1: int):
    """Pre-loop values of ``arr[c0:c1]`` as a reduced uint64 vector."""
    length = c1 - c0
    if rt.default_init is not None:
        d0 = rt.default_init(arr, 0)
        vals = (
            (_np.arange(c0, c1, dtype=_np.int64) * 7 + d0) % _M
        ).astype(_np.uint64)
    else:
        try:
            vals = _np.fromiter(
                (rt.initial(arr, cell) % _M for cell in range(c0, c1)),
                dtype=_np.uint64,
                count=length,
            )
        except _Fallback:
            raise
        except Exception:
            raise _Fallback from None
    store = rt.arrays.get(arr)
    if store:
        for cell, value in store.items():
            if c0 <= cell < c1:
                vals[cell - c0] = value % _M
    return vals


def _gather(rt: _Rt, reader: _C, sarr: str, soff: int, a: int, b: int):
    """Values ``sarr[i + soff]`` sees over iterations ``[a, b)``.

    Splices the body writer's produced vector (where its write is visible
    and within its window) with pre-loop state everywhere else.  Only ever
    reads ``out_vec`` positions strictly before ``a`` unless dependence
    ordering already filled the current segment (guaranteed by the SCC
    topological order).
    """
    length = b - a
    u = rt.writer.get(sarr)
    if u is not None:
        m = u.doff - soff  # dependence distance: reader at k reads write k-m
        klo, khi = rt.windows[u.ordinal]
        visible = m > 0 or (m == 0 and u.pos < reader.pos)
        if visible and khi >= klo:
            lo = max(a - m, klo)
            hi = min(b - 1 - m, khi)
            if lo <= hi:
                res = _np.empty(length, dtype=_np.uint64)
                res[lo + m - a : hi + m - a + 1] = rt.out_vec[sarr][lo : hi + 1]
                if lo + m - a > 0:
                    res[: lo + m - a] = _prestate_vec(
                        rt, sarr, rt.start_i + soff + a, rt.start_i + soff + lo + m
                    )
                if hi + m - a + 1 < length:
                    res[hi + m - a + 1 :] = _prestate_vec(
                        rt,
                        sarr,
                        rt.start_i + soff + hi + m + 1,
                        rt.start_i + soff + b,
                    )
                return res
    return _prestate_vec(rt, sarr, rt.start_i + soff + a, rt.start_i + soff + b)


def _mulmod(a, b):
    """Elementwise ``a * b mod 2**61 - 1`` on uint64 lanes (``a, b < 2**61``).

    32-bit split multiply: with ``a = a1*2**32 + a0``, the cross terms are
    folded through ``2**61 = 1 (mod M)``; every intermediate stays below
    ``2**63``, so plain wrapping uint64 arithmetic is exact.  With
    ``REPRO_NATIVE_KERNELS=1`` the product goes through the ``__int128``
    C kernel instead — value-exact, so bit-identical.
    """
    native = _native_mulmod(a, b)
    if native is not None:
        return native
    a0 = a & _U_MASK32
    a1 = a >> _U32
    b0 = b & _U_MASK32
    b1 = b >> _U32
    mid = a1 * b0 + a0 * b1  # < 2**62
    mid = (mid >> _U29) + ((mid & _U_MASK29) << _U32)  # mid * 2**32 mod M
    low = a0 * b0
    low = (low >> _U61) + (low & _UM)
    t = ((a1 * b1) << _U3) + mid + low  # a1*b1*2**64 == a1*b1*8 (mod M)
    t = (t & _UM) + (t >> _U61)
    t = (t & _UM) + (t >> _U61)
    return _np.where(t >= _UM, t - _UM, t)


def _v_add(x, y):
    """``(x + y) mod M`` for python-int / uint64-vector operands."""
    if isinstance(x, int) and isinstance(y, int):
        return (x + y) % _M
    return (x + y) % _UM


def _v_mul(x, y):
    """``(x * y) mod M`` for python-int / uint64-vector operands."""
    if isinstance(x, int):
        if isinstance(y, int):
            return (x * y) % _M
        return _mulmod(_np.uint64(x), y)
    if isinstance(y, int):
        return _mulmod(x, _np.uint64(y))
    return _mulmod(x, y)


def _v_sub(x, y):
    """``(x - y) mod M``; ``y`` is already reduced into ``[0, M)``."""
    if isinstance(y, int):
        return _v_add(x, (_M - y) % _M)
    return _v_add(x, _UM - y)


def _apply_op_vec(c: _C, vals: list, length: int, j_vec=None):
    """Vectorized :func:`evaluate_op` over one segment.

    All inputs are pre-reduced into ``[0, M)``; every op is a polynomial
    followed by a final ``% M``, so pre-reduction cannot change results.
    """
    op = c.op
    imm = c.imm
    if op is OpKind.ADD:
        acc = imm % _M
        for v in vals:
            acc = _v_add(acc, v)
    elif op is OpKind.SUB:
        if not vals:
            acc = imm % _M
        else:
            acc = vals[0]
            for v in vals[1:]:
                acc = _v_sub(acc, v)
            acc = _v_add(acc, imm % _M)
    elif op is OpKind.MUL:
        acc = imm % _M
        for v in vals:
            acc = _v_mul(acc, v)
    elif op is OpKind.MAC:
        acc = _v_mul(vals[0], vals[1])
        for v in vals[2:]:
            acc = _v_add(acc, v)
        acc = _v_add(acc, imm % _M)
    elif op is OpKind.COPY:
        acc = _v_add(vals[0], imm % _M)
    else:  # SOURCE (arity 0, checked in _analyze): imm + 13 * instance
        acc = (_np.uint64(imm % _M) + _np.uint64(13) * j_vec) % _UM
    if isinstance(acc, int):
        return _np.full(length, acc, dtype=_np.uint64)
    return acc


def _eval_singleton(rt: _Rt, c: _C, a: int, b: int) -> None:
    """Evaluate one acyclic compute over segment ``[a, b)`` into out_vec."""
    length = b - a
    j_vec = None
    if c.op is OpKind.SOURCE:
        j_vec = _np.arange(
            rt.start_i + c.doff + a, rt.start_i + c.doff + b, dtype=_np.uint64
        )
    vals = []
    for sarr, sbase, soff in c.srcs:
        if sbase == _LOOP:
            vals.append(_gather(rt, c, sarr, soff, a, b))
        else:  # _CONST or _TRIP on a non-body-written array (checked)
            cell = rt.n + soff if sbase == _TRIP else soff
            vals.append(_prestate_scalar(rt, sarr, cell))
    rt.out_vec[c.array][a:b] = _apply_op_vec(c, vals, length, j_vec)


# ---- affine forms over a cyclic component's state basis -------------------


class _Form:
    """An affine form ``sum(coeffs[i] * state_i) + vec + const  (mod M)``.

    ``vec`` carries per-iteration (position-dependent) contributions,
    ``const`` iteration-invariant scalars, ``coeffs`` the linear part over
    the component's lagged-value state basis.
    """

    __slots__ = ("coeffs", "vec", "const")

    def __init__(self, coeffs=None, vec=None, const=0):
        self.coeffs = coeffs if coeffs is not None else {}
        self.vec = vec
        self.const = const % _M


def _f_add(f1: _Form, f2: _Form) -> _Form:
    coeffs = dict(f1.coeffs)
    for k, v in f2.coeffs.items():
        nv = (coeffs.get(k, 0) + v) % _M
        if nv:
            coeffs[k] = nv
        else:
            coeffs.pop(k, None)
    if f1.vec is None:
        vec = f2.vec
    elif f2.vec is None:
        vec = f1.vec
    else:
        vec = (f1.vec + f2.vec) % _UM
    return _Form(coeffs, vec, f1.const + f2.const)


def _f_scale(f: _Form, s: int) -> _Form:
    s %= _M
    if s == 0:
        return _Form()
    coeffs = {}
    for k, v in f.coeffs.items():
        nv = (v * s) % _M
        if nv:
            coeffs[k] = nv
    vec = None if f.vec is None else _mulmod(_np.uint64(s), f.vec)
    return _Form(coeffs, vec, f.const * s)


def _f_materialize(f: _Form):
    """The value vector of a coefficient-free form (``vec + const``)."""
    if f.const == 0:
        return f.vec
    return (f.vec + _np.uint64(f.const)) % _UM


def _f_mul(f1: _Form, f2: _Form) -> _Form:
    if not f1.coeffs and f1.vec is None:
        return _f_scale(f2, f1.const)
    if not f2.coeffs and f2.vec is None:
        return _f_scale(f1, f2.const)
    if not f1.coeffs and not f2.coeffs:
        return _Form(vec=_mulmod(_f_materialize(f1), _f_materialize(f2)))
    raise _NonAffine  # state * state or state * vec: recurrence not affine


def _form_op(c: _C, forms: list[_Form]) -> _Form:
    imm = c.imm
    op = c.op
    if op is OpKind.ADD:
        acc = _Form(const=imm)
        for f in forms:
            acc = _f_add(acc, f)
        return acc
    if op is OpKind.SUB:
        if not forms:
            return _Form(const=imm)
        acc = forms[0]
        for f in forms[1:]:
            acc = _f_add(acc, _f_scale(f, _M - 1))
        return _f_add(acc, _Form(const=imm))
    if op is OpKind.MUL:
        acc = _Form(const=imm)
        for f in forms:
            acc = _f_mul(acc, f)
        return acc
    if op is OpKind.MAC:
        acc = _f_mul(forms[0], forms[1])
        for f in forms[2:]:
            acc = _f_add(acc, f)
        return _f_add(acc, _Form(const=imm))
    if op is OpKind.COPY:
        return _f_add(forms[0], _Form(const=imm))
    raise _NonAffine  # SOURCE has no inputs, hence never sits on a cycle


def _eval_form(f: _Form, states, length: int):
    acc = None
    for bi, cf in f.coeffs.items():
        term = states[bi] if cf == 1 else _mulmod(_np.uint64(cf), states[bi])
        acc = term.copy() if acc is None else (acc + term) % _UM
    if f.vec is not None:
        acc = f.vec if acc is None else (acc + f.vec) % _UM
    if f.const:
        if acc is None:
            return _np.full(length, f.const, dtype=_np.uint64)
        acc = (acc + _np.uint64(f.const)) % _UM
    if acc is None:
        return _np.zeros(length, dtype=_np.uint64)
    return acc


def _matvec(Tm: list[list[int]], X):
    """``Tm @ X mod M`` with an integer matrix and uint64 vector rows."""
    rows = []
    zero_shape = X.shape[1:]
    for row in Tm:
        acc = None
        for j, cf in enumerate(row):
            if cf == 0:
                continue
            term = X[j] if cf == 1 else _mulmod(_np.uint64(cf), X[j])
            acc = term if acc is None else (acc + term) % _UM
        rows.append(_np.zeros(zero_shape, dtype=_np.uint64) if acc is None else acc)
    return _np.stack(rows)


def _mat_mul(A: list[list[int]], B: list[list[int]]) -> list[list[int]]:
    d = len(A)
    return [
        [sum(A[i][k] * B[k][j] for k in range(d)) % _M for j in range(d)]
        for i in range(d)
    ]


def _mat_pow(Tm: list[list[int]], p: int) -> list[list[int]]:
    d = len(Tm)
    result = [[int(i == j) for j in range(d)] for i in range(d)]
    base = [row[:] for row in Tm]
    while p:
        if p & 1:
            result = _mat_mul(result, base)
        base = _mat_mul(base, base)
        p >>= 1
    return result


def _affine_scan(Tm: list[list[int]], Cvec, s0: list[int], length: int):
    """States ``s_0 .. s_{length-1}`` of ``s_{k+1} = Tm s_k + Cvec[:, k]``.

    Blocked square-root decomposition: within-block prefixes ``P_j`` are
    computed batched across all blocks (``P_{j+1} = T P_j + c_j``), block
    start states run sequentially in exact python ints via ``T**B``, and
    the expansion ``s_{blk*B+j} = T^j start_blk + P_j`` is batched again —
    O(sqrt(L)) python-level steps instead of O(L).
    """
    d = len(Tm)
    B = max(1, isqrt(length))
    nb = -(-length // B)
    total = nb * B
    C = _np.zeros((d, total), dtype=_np.uint64)
    C[:, :length] = Cvec
    C = C.reshape(d, nb, B)
    P = _np.zeros((d, nb, B), dtype=_np.uint64)
    cur = _np.zeros((d, nb), dtype=_np.uint64)
    for j in range(1, B):
        cur = (_matvec(Tm, cur) + C[:, :, j - 1]) % _UM
        P[:, :, j] = cur
    full = (_matvec(Tm, cur) + C[:, :, B - 1]) % _UM  # P_B per block
    TB = _mat_pow(Tm, B)
    s = [int(x) % _M for x in s0]
    start_cols = [list(s)]
    for blk in range(nb - 1):
        s = [
            (sum(TB[i][k] * s[k] for k in range(d)) + int(full[i, blk])) % _M
            for i in range(d)
        ]
        start_cols.append(list(s))
    starts = _np.array(start_cols, dtype=_np.uint64).T  # (d, nb)
    S = _np.zeros((d, nb, B), dtype=_np.uint64)
    S[:, :, 0] = starts
    cur = starts
    for j in range(1, B):
        cur = _matvec(Tm, cur)  # T^j * starts
        S[:, :, j] = (cur + P[:, :, j]) % _UM
    return S.reshape(d, total)[:, :length]


def _eval_scc(rt: _Rt, comp: list[_C], comp_ords: set[int], a: int, b: int) -> bool:
    """Evaluate a cyclic component over segment ``[a, b)``; False → fallback."""
    length = b - a
    comp = sorted(comp, key=lambda c: c.ordinal)
    # State basis: lagged produced values (arr, j) = value written j
    # iterations ago, for every in-component carried read distance.
    lags: dict[str, int] = {}
    for t in comp:
        for sarr, sbase, soff in t.srcs:
            if sbase != _LOOP:
                continue
            u = rt.writer.get(sarr)
            if u is None or u.ordinal not in comp_ords:
                continue
            m = u.doff - soff
            if 1 <= m < length and m > lags.get(sarr, 0):
                lags[sarr] = m
    d = sum(lags.values())
    if d == 0 or d > _MAX_STATE_DIM:
        return False
    basis: list[tuple[str, int]] = []
    bidx: dict[tuple[str, int], int] = {}
    for arr in sorted(lags):
        for j in range(1, lags[arr] + 1):
            bidx[(arr, j)] = len(basis)
            basis.append((arr, j))
    # Express every member's produced value as an affine form over the
    # state at its own iteration (ordinal order makes m == 0 intra-
    # component reads resolvable by substitution).
    forms: dict[int, _Form] = {}
    try:
        for t in comp:
            fs: list[_Form] = []
            for sarr, sbase, soff in t.srcs:
                if sbase == _LOOP:
                    u = rt.writer.get(sarr)
                    if u is not None and u.ordinal in comp_ords:
                        m = u.doff - soff
                        if m == 0 and u.pos < t.pos:
                            fs.append(forms[u.ordinal])
                            continue
                        if (sarr, m) in bidx:
                            fs.append(_Form(coeffs={bidx[(sarr, m)]: 1}))
                            continue
                    fs.append(_Form(vec=_gather(rt, t, sarr, soff, a, b)))
                else:
                    cell = rt.n + soff if sbase == _TRIP else soff
                    fs.append(_Form(const=_prestate_scalar(rt, sarr, cell)))
            forms[t.ordinal] = _form_op(t, fs)
    except _NonAffine:
        return False
    # Transition: row (arr, 1) is the writer's form; row (arr, j>1) shifts.
    Tm = [[0] * d for _ in range(d)]
    Cvec = _np.zeros((d, length), dtype=_np.uint64)
    for arr, j in basis:
        row = bidx[(arr, j)]
        if j == 1:
            f = forms[rt.writer[arr].ordinal]
            for bi, cf in f.coeffs.items():
                Tm[row][bi] = cf
            if f.vec is not None:
                Cvec[row, :] = f.vec
            if f.const:
                Cvec[row, :] = (Cvec[row, :] + _np.uint64(f.const)) % _UM
        else:
            Tm[row][bidx[(arr, j - 1)]] = 1
    # Initial state: lagged values before the segment (earlier segments'
    # produced values, or pre-loop state outside the writer's window).
    s0: list[int] = []
    for arr, j in basis:
        k0 = a - j
        u = rt.writer[arr]
        klo, khi = rt.windows[u.ordinal]
        if klo <= k0 <= khi:
            s0.append(int(rt.out_vec[arr][k0]))
        else:
            s0.append(_prestate_scalar(rt, arr, rt.start_i + u.doff + k0))
    states = _affine_scan(Tm, Cvec, s0, length)
    for t in comp:
        rt.out_vec[t.array][a:b] = _eval_form(forms[t.ordinal], states, length)
    return True


def _tarjan(adj: dict[int, list[int]]) -> list[list[int]]:
    """Iterative Tarjan SCC; components come out in reverse topological
    order of the condensation (consumers before their producers)."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    onstack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    next_index = 0
    for root in adj:
        if root in index:
            continue
        work: list[list[int]] = [[root, 0]]
        while work:
            v, ei = work[-1]
            if ei == 0:
                index[v] = low[v] = next_index
                next_index += 1
                stack.append(v)
                onstack.add(v)
            recurse = False
            edges = adj[v]
            while ei < len(edges):
                w = edges[ei]
                ei += 1
                if w not in index:
                    work[-1][1] = ei
                    work.append([w, 0])
                    recurse = True
                    break
                if w in onstack and index[w] < low[v]:
                    low[v] = index[w]
            if recurse:
                continue
            work.pop()
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    onstack.remove(w)
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
    return sccs


def _run_trace(info, start_i, T, n, arrays, reg_values, initial):
    """Vector-execute the whole trip; ``None`` (with machine state fully
    untouched) means the caller must run the interpreter loop instead."""
    computes, writer, dec_total = info
    if T > _MAX_TRACE_TRIP:
        return None
    for reg in dec_total:
        if reg not in reg_values:
            return None  # decrement before setup: dispatch raises properly
    # Exact activation windows from the guards' affine progressions.
    executed = 0
    disabled = 0
    windows: list[tuple[int, int]] = []
    for c in computes:
        if c.guard_reg is None:
            klo, khi = 0, T - 1
        else:
            if c.guard_reg not in reg_values:
                return None  # read before setup: dispatch raises properly
            A = reg_values[c.guard_reg] + c.guard_off - c.base_dec
            per = dec_total.get(c.guard_reg, 0)
            if per == 0:
                klo, khi = (0, T - 1) if -n < A <= 0 else (0, -1)
            else:  # per > 0: active iff klo <= k <= khi (exact ceil/floor)
                klo = max(0, -((-A) // per))
                khi = min(T - 1, (A + n - 1) // per)
                if khi < klo:
                    klo, khi = 0, -1
        windows.append((klo, khi))
        if khi >= klo:
            executed += khi - klo + 1
        if c.guard_reg is not None:
            disabled += T - max(0, khi - klo + 1)
    # Write legality: in-range, and no collision with pre-written cells
    # (dispatch would raise mid-loop — fall back and let it).
    for c in computes:
        klo, khi = windows[c.ordinal]
        if khi < klo:
            continue
        lo_cell = start_i + c.doff + klo
        hi_cell = start_i + c.doff + khi
        if lo_cell < 1 or hi_cell > n:
            return None
        pre_store = arrays.get(c.array)
        if pre_store:
            for cell in pre_store:
                if lo_cell <= cell <= hi_cell:
                    return None
    # Segments: between consecutive window boundaries every instruction is
    # fully active or fully inactive.
    bounds = {0, T}
    for klo, khi in windows:
        if khi >= klo:
            bounds.add(klo)
            bounds.add(khi + 1)
    cuts = sorted(bounds)

    rt = _Rt()
    rt.writer = writer
    rt.windows = windows
    rt.arrays = arrays
    rt.start_i = start_i
    rt.n = n
    rt.initial = initial
    from .vm import default_initial  # lazy: vm imports this module at top

    rt.default_init = default_initial if initial is default_initial else None
    rt.out_vec = {
        arr: _np.zeros(T, dtype=_np.uint64)
        for arr, c in writer.items()
        if windows[c.ordinal][1] >= windows[c.ordinal][0]
    }

    steps = 0
    try:
        for a, b in zip(cuts, cuts[1:]):
            active = [
                c
                for c in computes
                if windows[c.ordinal][0] <= a and windows[c.ordinal][1] >= b - 1
            ]
            if not active:
                continue
            steps += len(active)
            act_ords = {c.ordinal for c in active}
            by_ord = {c.ordinal: c for c in active}
            length = b - a
            adj: dict[int, list[int]] = {c.ordinal: [] for c in active}
            for t in active:
                for sarr, sbase, soff in t.srcs:
                    if sbase != _LOOP:
                        continue
                    u = writer.get(sarr)
                    if u is None or u.ordinal not in act_ords:
                        continue
                    m = u.doff - soff
                    if (m == 0 and u.pos < t.pos) or 1 <= m < length:
                        adj[u.ordinal].append(t.ordinal)
            for comp_ords in reversed(_tarjan(adj)):
                if len(comp_ords) == 1 and comp_ords[0] not in adj[comp_ords[0]]:
                    _eval_singleton(rt, by_ord[comp_ords[0]], a, b)
                else:
                    comp = [by_ord[o] for o in comp_ords]
                    if not _eval_scc(rt, comp, set(comp_ords), a, b):
                        return None
    except _Fallback:
        return None

    # Commit: the only machine-state mutation in this module.
    for arr, c in writer.items():
        klo, khi = windows[c.ordinal]
        if khi < klo:
            continue
        base_cell = start_i + c.doff
        store = arrays.setdefault(arr, {})
        store.update(
            zip(
                range(base_cell + klo, base_cell + khi + 1),
                rt.out_vec[arr][klo : khi + 1].tolist(),
            )
        )
    for reg, per in dec_total.items():
        reg_values[reg] -= per * T
    if steps:
        count("vm.trace.steps", steps)
    return executed, disabled


# ---- entry points ---------------------------------------------------------

_HOOK_CACHE: dict[int, tuple] = {}
_HOOK_LOCK = threading.Lock()


def _body_info(compiled):
    """Cached static analysis of a compiled program's body (id-keyed with a
    weakref guard, like the dispatch compilation cache)."""
    key = id(compiled)
    entry = _HOOK_CACHE.get(key)
    if entry is not None and entry[0]() is compiled:
        return entry[1]
    info = _analyze([[op] for op in compiled.body])
    with _HOOK_LOCK:
        entry = _HOOK_CACHE.get(key)
        if entry is not None and entry[0]() is compiled:
            return entry[1]
        _HOOK_CACHE[key] = (weakref.ref(compiled), info)
        weakref.finalize(compiled, _HOOK_CACHE.pop, key, None)
    return info


def body_hook(compiled, loop, n: int, initial):
    """A loop-body hook for :func:`~repro.machine.dispatch.execute_compiled`,
    or ``None`` if the body is statically untraceable.

    The returned callable takes the live ``(arrays, reg_values)`` after the
    pre region and either executes the entire loop vectorized — returning
    ``(executed, disabled)`` — or returns ``None`` without having touched
    either structure, in which case the interpreter loop must run.
    """
    if _np is None or MODULUS != _M or not _trace_enabled() or loop.step != 1:
        return None
    info = _body_info(compiled)
    if info is None:
        return None
    T = loop.trip_count(n)
    start_i = loop.start.resolve(None, n)

    def hook(arrays, reg_values):
        if T == 0:
            return 0, 0
        return _run_trace(info, start_i, T, n, arrays, reg_values, initial)

    return hook


def packed_body_trace(body_words, loop, n: int, reg_values, arrays, initial):
    """Vector-execute a VLIW body (list of compiled words), or ``None``.

    Same contract as the sequential hook: a non-``None`` return means the
    whole loop ran (word-commit semantics preserved through the group
    structure) and gives ``(executed, disabled)``; ``None`` means machine
    state is untouched and the word-by-word interpreter must run.
    """
    if _np is None or MODULUS != _M or not _trace_enabled() or loop.step != 1:
        return None
    info = _analyze(body_words)
    if info is None:
        return None
    T = loop.trip_count(n)
    if T == 0:
        return 0, 0
    return _run_trace(
        info, loop.start.resolve(None, n), T, n, arrays, reg_values, initial
    )
