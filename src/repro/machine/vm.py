"""The virtual DSP machine: executes loop programs with conditional registers.

This is the substrate that stands in for the paper's TMS320C6000-class
hardware.  It executes a :class:`~repro.codegen.ir.LoopProgram` for a
concrete trip count ``n`` and returns the full array state, enforcing two
invariants that turn execution into a semantic proof:

* **single assignment** — every array instance is written at most once
  (a transformation that computed an instance twice, or whose guards failed
  to disable an out-of-range copy, dies loudly);
* **range discipline** — writes land only in instances ``1 .. n``.

Array reads of never-written instances return deterministic *initial
values* (the loop's live-in state, e.g. ``B[-1]`` in the paper's figures),
so programs are comparable even across transformations that read different
out-of-range instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..codegen.ir import ComputeInstr, DecInstr, Instr, LoopProgram, SetupInstr
from ..graph.dfg import evaluate_op
from ..observability import OBS, span
from .registers import ConditionalRegisterFile, MachineError
from .trace import ExecutionTrace

__all__ = ["VMResult", "run_program", "default_initial", "MachineError"]


def default_initial(array: str, index: int) -> int:
    """Deterministic initial value of ``array[index]`` (live-in state).

    A fixed polynomial in a stable per-name seed and the index — the same
    across processes and Python versions (unlike built-in ``hash``).
    """
    seed = 0
    for ch in array:
        seed = (seed * 131 + ord(ch)) % 1_000_003
    return seed * 31 + index * 7 + 1


@dataclass
class VMResult:
    """Outcome of one program execution.

    Attributes
    ----------
    arrays:
        ``array name -> {instance -> value}`` for every *written* instance.
    executed:
        Number of compute instructions that actually executed.
    disabled:
        Number of guarded computes whose predicate was off.
    trace:
        Full execution trace when tracing was requested, else ``None``.
    """

    arrays: dict[str, dict[int, int]]
    executed: int
    disabled: int
    trace: ExecutionTrace | None = None

    def written(self, array: str) -> dict[int, int]:
        """Written instances of one array (empty dict if none)."""
        return self.arrays.get(array, {})


def _check_meta(program: LoopProgram, n: int) -> None:
    meta = program.meta
    min_n = meta.get("min_n")
    if min_n is not None and n < min_n:
        raise MachineError(
            f"{program.name}: trip count {n} below the program's minimum {min_n}"
        )
    factor = meta.get("factor")
    residue = meta.get("residue")
    if factor and residue is not None:
        shift = meta.get("residue_shift", 0)
        if (n - shift) % factor != residue:
            raise MachineError(
                f"{program.name}: trip count {n} has residue "
                f"{(n - shift) % factor} (mod {factor}, shifted by {shift}), "
                f"but the program was specialized for residue {residue}"
            )


def run_program(
    program: LoopProgram,
    n: int,
    initial: Callable[[str, int], int] = default_initial,
    trace: bool = False,
    register_capacity: int | None = None,
    dispatch: bool = True,
) -> VMResult:
    """Execute ``program`` with trip count ``n`` and return the array state.

    ``register_capacity`` bounds the conditional register file (see
    :class:`~repro.machine.registers.ConditionalRegisterFile`);
    ``initial`` supplies live-in array values.

    By default execution goes through the pre-compiled threaded-dispatch
    engine (:mod:`repro.machine.dispatch`), which is differential-tested
    bit-identical to the reference interpreter.  ``dispatch=False`` forces
    the reference interpreter; ``trace=True`` implies it (tracing hooks
    live only there, and tracing cost dwarfs interpretation cost anyway).
    """
    if n < 0:
        raise MachineError(f"trip count must be >= 0, got {n}")
    _check_meta(program, n)

    if dispatch and not trace:
        from .dispatch import compile_program, execute_compiled
        from .trace import body_hook

        if register_capacity is not None and register_capacity < 0:
            raise MachineError(f"capacity must be >= 0, got {register_capacity}")
        compiled = compile_program(program)
        with span("vm.run", program=program.name, n=n) as sp:
            arrays, executed, disabled = execute_compiled(
                compiled,
                n,
                initial,
                {},
                register_capacity,
                program.loop.iter_indices(n),
                body_hook=body_hook(compiled, program.loop, n, initial),
            )
            sp.set(executed=executed, disabled=disabled)
        if OBS.enabled:
            m = OBS.metrics
            m.counter(
                "vm.instructions.executed", "compute instructions executed"
            ).inc(executed)
            m.counter(
                "vm.instructions.disabled", "guarded computes whose predicate was off"
            ).inc(disabled)
            m.histogram(
                "vm.run.instructions", "executed instructions per program run"
            ).observe(executed)
        return VMResult(arrays=arrays, executed=executed, disabled=disabled, trace=None)

    regs = ConditionalRegisterFile(trip_count=n, capacity=register_capacity)
    arrays: dict[str, dict[int, int]] = {}
    tr = ExecutionTrace() if trace else None
    executed = 0
    disabled = 0

    def read(array: str, index: int) -> int:
        store = arrays.get(array)
        if store is not None and index in store:
            return store[index]
        return initial(array, index)

    def execute(instr: Instr, i: int | None, region: str) -> None:
        nonlocal executed, disabled
        if isinstance(instr, SetupInstr):
            regs.setup(instr.register, instr.init)
            return
        if isinstance(instr, DecInstr):
            regs.decrement(instr.register, instr.amount)
            return
        assert isinstance(instr, ComputeInstr)
        if not regs.is_active(instr.guard):
            disabled += 1
            if tr is not None:
                tr.disabled += 1
            return
        dest_index = instr.dest.index.resolve(i, n)
        if not 1 <= dest_index <= n:
            raise MachineError(
                f"{program.name}: write to {instr.dest.array}[{dest_index}] "
                f"outside 1..{n} (instruction: {instr})"
            )
        store = arrays.setdefault(instr.dest.array, {})
        if dest_index in store:
            raise MachineError(
                f"{program.name}: {instr.dest.array}[{dest_index}] computed twice "
                f"(instruction: {instr})"
            )
        values = [read(s.array, s.index.resolve(i, n)) for s in instr.srcs]
        store[dest_index] = evaluate_op(instr.op, instr.imm, values, dest_index)
        executed += 1
        if tr is not None:
            tr.record(instr.dest.array, dest_index, region, i)

    # One span per run and bulk counter updates at the end — the per-
    # instruction loop carries no observability cost.
    with span("vm.run", program=program.name, n=n) as sp:
        for instr in program.pre:
            execute(instr, None, "pre")
        for i in program.loop.iter_indices(n):
            for instr in program.loop.body:
                execute(instr, i, "body")
        for instr in program.post:
            execute(instr, None, "post")
        sp.set(executed=executed, disabled=disabled)

    if OBS.enabled:
        m = OBS.metrics
        m.counter(
            "vm.instructions.executed", "compute instructions executed"
        ).inc(executed)
        m.counter(
            "vm.instructions.disabled", "guarded computes whose predicate was off"
        ).inc(disabled)
        m.histogram(
            "vm.run.instructions", "executed instructions per program run"
        ).observe(executed)

    return VMResult(arrays=arrays, executed=executed, disabled=disabled, trace=tr)
