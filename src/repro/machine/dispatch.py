"""Pre-compiled threaded dispatch for :class:`~repro.codegen.ir.LoopProgram`.

The reference interpreter in :mod:`repro.machine.vm` walks the instruction
dataclasses on every iteration: per instruction it pays an ``isinstance``
chain, attribute lookups (``instr.dest.index.offset`` …), a closure call per
operand read, and a trip through the generic
:func:`~repro.graph.dfg.evaluate_op` dispatch.  None of that work depends on
the iteration — only the resolved indices and operand values do.

This module compiles a program *once* into flat per-instruction tuples with
pre-resolved registers, ops, and index offsets:

* the instruction kind becomes a small int (``_SETUP``/``_DEC``/``_COMPUTE``)
  switched on with two integer comparisons;
* guards become a pre-extracted ``(register, offset)`` pair (or ``None``);
* every operand index becomes a ``(base_code, offset)`` pair resolved with
  one or two integer comparisons — the compiler re-encodes loop-variable
  indices appearing *outside* the loop body as an explicit error code so the
  reference semantics (a :class:`~repro.graph.dfg.DFGError` at execution
  time, not compile time) are preserved;
* the operation becomes a specialized closure over ``(op, imm)`` whose
  arithmetic is copied verbatim from :func:`evaluate_op` (malformed arities
  fall back to ``evaluate_op`` itself so error behavior and messages stay
  identical).

Compiled programs are cached per ``LoopProgram`` object (id-keyed with a
weakref guard, so the cache neither leaks nor survives object reuse), making
repeated ``run_program`` calls on the same program pay compilation once.

The executor is differential-tested against the reference interpreter for
bit-identical :class:`~repro.machine.vm.VMResult` contents on the full
workload registry and hundreds of random programs.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable

from ..codegen.ir import (
    ComputeInstr,
    DecInstr,
    IndexBase,
    IndexExpr,
    Instr,
    LoopProgram,
    SetupInstr,
)
from ..graph.dfg import DFGError, MODULUS, OpKind, evaluate_op
from .registers import MachineError

__all__ = [
    "CompiledProgram",
    "WarmPool",
    "compile_program",
    "execute_compiled",
    "program_pool",
    "warm_program",
]

# Instruction kind codes.
_SETUP = 0
_DEC = 1
_COMPUTE = 2

# Index base codes.  _ERR marks a loop-variable index compiled outside the
# loop body: resolving it raises, matching IndexExpr.resolve semantics.
_CONST = 0
_LOOP = 1
_TRIP = 2
_ERR = 3


def _op_closure(op: OpKind, imm: int, arity: int) -> Callable[[list[int], int], int]:
    """A specialized ``(values, instance) -> int`` evaluator for one
    instruction, bit-identical to :func:`evaluate_op`.

    Arity mismatches that :func:`evaluate_op` rejects are deliberately left
    to the generic function so they raise the same error *at execution
    time* (a guarded-off malformed instruction must stay runnable).
    """
    if op is OpKind.ADD:
        return lambda values, _j: (sum(values) + imm) % MODULUS
    if op is OpKind.SUB:
        if arity == 0:
            const = imm % MODULUS
            return lambda _values, _j: const
        return lambda values, _j: (values[0] - sum(values[1:]) + imm) % MODULUS
    if op is OpKind.MUL:

        def _mul(values: list[int], _j: int) -> int:
            result = imm % MODULUS
            for v in values:
                result = (result * v) % MODULUS
            return result

        return _mul
    if op is OpKind.MAC and arity >= 2:
        return lambda values, _j: (
            values[0] * values[1] + sum(values[2:]) + imm
        ) % MODULUS
    if op is OpKind.COPY and arity == 1:
        return lambda values, _j: (values[0] + imm) % MODULUS
    if op is OpKind.SOURCE and arity == 0:
        return lambda _values, j: (imm + 13 * j) % MODULUS
    # Malformed arity or unknown op: defer to the generic evaluator for
    # identical error behavior.
    return lambda values, j: evaluate_op(op, imm, values, j)


def _index_code(expr: IndexExpr, in_body: bool) -> tuple[int, int]:
    """``(base_code, offset)`` for one index expression in one region."""
    if expr.base is IndexBase.CONST:
        return (_CONST, expr.offset)
    if expr.base is IndexBase.N:
        return (_TRIP, expr.offset)
    if not in_body:
        return (_ERR, expr.offset)
    return (_LOOP, expr.offset)


def _compile_region(instrs: tuple[Instr, ...], in_body: bool) -> list[tuple]:
    """Compile one region into flat dispatch tuples.

    Compute tuples: ``(_COMPUTE, guard_reg, guard_off, dest_array,
    dest_base, dest_off, op_fn, srcs, instr)`` with ``srcs`` a tuple of
    ``(array, base_code, offset)``; the trailing ``instr`` is only for
    error messages.
    """
    code: list[tuple] = []
    for instr in instrs:
        if isinstance(instr, SetupInstr):
            code.append((_SETUP, instr.register, instr.init))
        elif isinstance(instr, DecInstr):
            code.append((_DEC, instr.register, instr.amount))
        else:
            assert isinstance(instr, ComputeInstr)
            guard = instr.guard
            dbase, doff = _index_code(instr.dest.index, in_body)
            srcs = tuple(
                (s.array, *_index_code(s.index, in_body)) for s in instr.srcs
            )
            code.append(
                (
                    _COMPUTE,
                    guard.register if guard is not None else None,
                    guard.offset if guard is not None else 0,
                    instr.dest.array,
                    dbase,
                    doff,
                    _op_closure(instr.op, instr.imm, len(instr.srcs)),
                    srcs,
                    instr,
                )
            )
    return code


class CompiledProgram:
    """A :class:`LoopProgram` lowered to flat dispatch lists."""

    __slots__ = ("name", "pre", "body", "post", "program_ref", "__weakref__")

    def __init__(self, program: LoopProgram) -> None:
        self.name = program.name
        self.pre = _compile_region(program.pre, in_body=False)
        self.body = _compile_region(program.loop.body, in_body=True)
        self.post = _compile_region(program.post, in_body=False)
        self.program_ref = weakref.ref(program)


_CACHE: dict[int, CompiledProgram] = {}
_CACHE_LOCK = threading.Lock()


def compile_program(program: LoopProgram) -> CompiledProgram:
    """The compiled form of ``program``, cached per program object.

    Thread-safe: concurrent calls on the same program compile it once
    (double-checked under a lock), and the id-keyed entry is revalidated
    against its weakref so a recycled ``id()`` after GC can never alias a
    different program to a stale compilation.
    """
    key = id(program)
    cached = _CACHE.get(key)
    if cached is not None and cached.program_ref() is program:
        return cached
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None and cached.program_ref() is program:
            return cached
        compiled = CompiledProgram(program)
        _CACHE[key] = compiled
        weakref.finalize(program, _CACHE.pop, key, None)
    return compiled


class WarmPool:
    """Bounded LRU of content-keyed values kept warm across requests.

    The id-keyed cache above only helps while the caller holds the same
    ``LoopProgram`` object; a long-lived request server rebuilds programs
    from graph JSON per request, so every rebuild would recompile.  A
    :class:`WarmPool` keyed on *content* (a graph digest plus transform
    parameters) keeps the built objects — programs, (W, D) matrices —
    alive across requests, bounded so an adversarial request stream
    cannot grow it without limit.  Thread-safe: the server's batch
    executor and the asyncio loop may touch it concurrently.
    """

    __slots__ = ("capacity", "_entries", "_lock", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"warm pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict = {}  # insertion-ordered; re-insert on touch
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        """The pooled value for ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            if key in self._entries:
                value = self._entries.pop(key)
                self._entries[key] = value  # most-recently-used position
                self.hits += 1
                return value
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry beyond capacity."""
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self.evictions += 1

    def get_or_build(self, key, build):
        """Pooled value for ``key``, building and pooling it on a miss.

        ``build`` runs outside the lock — two concurrent misses may both
        build, but the pool stays consistent and the values are pure
        functions of the key, so either result is correct.
        """
        value = self.get(key)
        if value is None:
            value = build()
            self.put(key, value)
        return value

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide warm pool of built ``LoopProgram`` objects, keyed by
#: content.  Holding the program object alive is what makes the id-keyed
#: ``compile_program`` cache hit across requests.
_PROGRAM_POOL = WarmPool(capacity=128)


def program_pool() -> WarmPool:
    """The process-wide compiled-program warm pool (server hot path)."""
    return _PROGRAM_POOL


def warm_program(key, build) -> LoopProgram:
    """A content-keyed, warm-pooled ``LoopProgram``, pre-compiled.

    ``build`` constructs the program on a pool miss; either way the
    returned program is already through :func:`compile_program`, so the
    first execution pays no dispatch-compilation cost.
    """
    program = _PROGRAM_POOL.get_or_build(key, build)
    compile_program(program)
    return program


def execute_compiled(
    compiled: CompiledProgram,
    n: int,
    initial: Callable[[str, int], int],
    reg_values: dict[str, int],
    reg_capacity: int | None,
    loop_indices,
    body_hook: Callable | None = None,
) -> tuple[dict[str, dict[int, int]], int, int]:
    """Run a compiled program; returns ``(arrays, executed, disabled)``.

    ``reg_values`` is the conditional register file's backing dict (shared
    so callers can snapshot it); semantics — the activation window
    ``-n < p + offset <= 0``, capacity exhaustion, reads before setup —
    replicate :class:`~repro.machine.registers.ConditionalRegisterFile`
    exactly, including error messages.

    ``body_hook``, when provided (see :func:`repro.machine.trace.body_hook`),
    is offered the whole loop after the pre region: it either executes every
    iteration vectorized — returning the ``(executed, disabled)`` deltas —
    or returns ``None`` with machine state untouched, in which case the
    interpreter loop below runs as usual.
    """
    arrays: dict[str, dict[int, int]] = {}
    arrays_get = arrays.get
    arrays_setdefault = arrays.setdefault
    executed = 0
    disabled = 0
    name = compiled.name
    neg_n = -n

    def run_region(code: list[tuple], i: int | None) -> None:
        nonlocal executed, disabled
        for op in code:
            kind = op[0]
            if kind == _COMPUTE:
                greg = op[1]
                if greg is not None:
                    try:
                        p = reg_values[greg]
                    except KeyError:
                        raise MachineError(
                            f"read of register {greg!r} before setup"
                        ) from None
                    p += op[2]
                    if not (neg_n < p <= 0):
                        disabled += 1
                        continue
                dbase = op[4]
                if dbase == _CONST:
                    dest_index = op[5]
                elif dbase == _LOOP:
                    dest_index = i + op[5]
                elif dbase == _TRIP:
                    dest_index = n + op[5]
                else:
                    raise DFGError("loop-variable index used outside the loop body")
                if not 1 <= dest_index <= n:
                    raise MachineError(
                        f"{name}: write to {op[3]}[{dest_index}] "
                        f"outside 1..{n} (instruction: {op[8]})"
                    )
                store = arrays_setdefault(op[3], {})
                if dest_index in store:
                    raise MachineError(
                        f"{name}: {op[3]}[{dest_index}] computed twice "
                        f"(instruction: {op[8]})"
                    )
                values = []
                for sarr, sbase, soff in op[7]:
                    if sbase == _CONST:
                        idx = soff
                    elif sbase == _LOOP:
                        idx = i + soff
                    elif sbase == _TRIP:
                        idx = n + soff
                    else:
                        raise DFGError(
                            "loop-variable index used outside the loop body"
                        )
                    src_store = arrays_get(sarr)
                    if src_store is not None and idx in src_store:
                        values.append(src_store[idx])
                    else:
                        values.append(initial(sarr, idx))
                store[dest_index] = op[6](values, dest_index)
                executed += 1
            elif kind == _SETUP:
                reg = op[1]
                if (
                    reg_capacity is not None
                    and reg not in reg_values
                    and len(reg_values) >= reg_capacity
                ):
                    raise MachineError(
                        f"conditional register file exhausted: cannot allocate "
                        f"{reg!r} beyond capacity {reg_capacity}"
                    )
                reg_values[reg] = op[2]
            else:  # _DEC
                reg = op[1]
                if reg not in reg_values:
                    raise MachineError(
                        f"decrement of register {reg!r} before setup"
                    )
                reg_values[reg] -= op[2]

    run_region(compiled.pre, None)
    handled = body_hook(arrays, reg_values) if body_hook is not None else None
    if handled is None:
        body = compiled.body
        for i in loop_indices:
            run_region(body, i)
    else:
        executed += handled[0]
        disabled += handled[1]
    run_region(compiled.post, None)
    return arrays, executed, disabled
