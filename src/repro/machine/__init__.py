"""Virtual DSP machine with conditional registers.

Stands in for the paper's predicated VLIW hardware: executes loop programs
from :mod:`repro.codegen`, enforcing the ``setup p = init : -LC`` predicate
window, single-assignment of array instances and write-range discipline —
so that "the transformed program computes the same arrays" is checked by
actually running both.
"""

from .registers import ConditionalRegisterFile, MachineError
from .trace import ExecutionTrace, TraceEvent
from .vliw_vm import PackedResult, run_packed
from .vm import VMResult, default_initial, run_program

__all__ = [
    "ConditionalRegisterFile",
    "MachineError",
    "ExecutionTrace",
    "TraceEvent",
    "PackedResult",
    "run_packed",
    "VMResult",
    "default_initial",
    "run_program",
]
