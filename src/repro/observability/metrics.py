"""Counters, gauges and histograms for the pipeline's hot paths.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` — monotonically increasing totals (VM instructions
  executed, retiming iterations, cache hits);
* :class:`Gauge` — last-written values (cache hit rate, engine wall time);
* :class:`Histogram` — distributions over fixed bucket bounds (per-run
  instruction counts, per-call wall times).

Two exporters cover both consumption modes: :meth:`MetricsRegistry.as_dict`
(machine-readable JSON, the ``--metrics-out`` flag) and
:meth:`MetricsRegistry.to_prometheus` (the Prometheus text exposition
format, dots mapped to underscores).

Registries merge: :meth:`MetricsRegistry.merge` adds another registry's
JSON snapshot pointwise, which is how counters from experiment-engine
worker processes aggregate into the parent run — each worker ships its
deltas home in the result envelope, and the merged totals equal what a
serial run would have counted.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds (generic magnitude ladder).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


class Counter:
    """Monotonically increasing integer total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n


class Gauge:
    """Last-written value (may go up or down)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Distribution over fixed bucket upper bounds.

    ``buckets[i]`` counts observations ``<= bounds[i]``; observations above
    the last bound land in the implicit ``+Inf`` overflow bucket.  Count,
    sum, min and max are tracked exactly.
    """

    __slots__ = ("name", "help", "bounds", "buckets", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bucket bounds must be sorted")
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def percentile(self, q: float) -> float | None:
        """Bucket-resolution upper bound on the ``q``-th percentile.

        Returns the smallest bucket upper bound whose cumulative count
        covers at least ``q`` percent of observations (``self.max`` for
        the overflow bucket), or ``None`` with no observations.
        Deterministic — the soak tests use it as an op-counter-style
        latency budget, never a wall-clock assertion.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return None
        rank = q / 100.0 * self.count
        cumulative = 0
        for bound, n in zip(self.bounds, self.buckets):
            cumulative += n
            if cumulative >= rank:
                return float(bound)
        return float(self.max)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Flat, typed namespace of instruments with merge and export."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name, help)
        return c

    def gauge(self, name: str, help: str = "") -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name, help)
        return g

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, help, bounds)
        return h

    # -- export --------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON snapshot; the transport format of :meth:`merge`."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (``.`` becomes ``_``)."""

        def prom(name: str) -> str:
            return name.replace(".", "_").replace("-", "_")

        lines: list[str] = []
        for name, c in sorted(self._counters.items()):
            p = prom(name)
            if c.help:
                lines.append(f"# HELP {p} {c.help}")
            lines.append(f"# TYPE {p} counter")
            lines.append(f"{p} {c.value}")
        for name, g in sorted(self._gauges.items()):
            p = prom(name)
            if g.help:
                lines.append(f"# HELP {p} {g.help}")
            lines.append(f"# TYPE {p} gauge")
            lines.append(f"{p} {g.value}")
        for name, h in sorted(self._histograms.items()):
            p = prom(name)
            if h.help:
                lines.append(f"# HELP {p} {h.help}")
            lines.append(f"# TYPE {p} histogram")
            cumulative = 0
            for bound, count in zip(h.bounds, h.buckets):
                cumulative += count
                lines.append(f'{p}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f'{p}_bucket{{le="+Inf"}} {h.count}')
            lines.append(f"{p}_sum {h.sum}")
            lines.append(f"{p}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- merge / reset -------------------------------------------------

    def merge(self, snapshot: dict) -> None:
        """Add another registry's :meth:`as_dict` snapshot pointwise.

        Counters and histograms accumulate (bucket-by-bucket; bucket
        bounds must match); gauges take the incoming value.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, doc in snapshot.get("histograms", {}).items():
            h = self.histogram(name, bounds=tuple(doc["bounds"]))
            if list(h.bounds) != list(doc["bounds"]):
                raise ValueError(
                    f"histogram {name}: merging mismatched bucket bounds"
                )
            for i, count in enumerate(doc["buckets"]):
                h.buckets[i] += count
            h.count += doc["count"]
            h.sum += doc["sum"]
            if doc["count"]:
                h.min = min(h.min, doc["min"])
                h.max = max(h.max, doc["max"])

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
