"""Structured tracing: nested spans with monotonic timings.

A :class:`Span` is one timed region of the pipeline — "retime this graph",
"execute this program" — with a name, a wall-anchored start time, a
duration and free-form attributes.  Spans nest: entering a span while
another is open makes it a child, so one profiled run yields a *tree*
whose shape mirrors the call structure (retiming inside a job inside an
engine batch).

Timing uses ``time.perf_counter_ns`` (monotonic, immune to clock steps)
re-anchored once per tracer to the wall clock, so spans recorded in
*different processes* land on one comparable timeline.  Spans serialize to
plain JSON dicts (:meth:`Span.to_dict`) — that is the transport the
experiment engine uses to ship worker-process spans back to the parent
tracer (:meth:`Tracer.absorb`).

The export format is the Chrome trace-event JSON (``chrome://tracing`` /
Perfetto): one ``"ph": "X"`` complete event per span, microsecond
timestamps, worker processes on their own ``pid`` lanes.
:func:`spans_from_chrome_events` inverts the exporter (used by the
round-trip property tests).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Span",
    "Tracer",
    "aggregate_spans",
    "chrome_trace_events",
    "format_breakdown",
    "spans_from_chrome_events",
    "write_chrome_trace",
]


@dataclass
class Span:
    """One timed, attributed, possibly-nested region.

    ``start_ns`` is wall-anchored monotonic nanoseconds (see module docs);
    ``duration_ns`` is filled when the span closes.
    """

    name: str
    start_ns: int = 0
    duration_ns: int = 0
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    pid: int = field(default_factory=os.getpid)

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; returns ``self`` for chaining."""
        self.attributes.update(attrs)
        return self

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def self_ns(self) -> int:
        """Duration not covered by direct children (exclusive time)."""
        return self.duration_ns - sum(c.duration_ns for c in self.children)

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- JSON transport (cross-process) --------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON rendering; inverse of :meth:`from_dict`."""
        doc: dict = {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "pid": self.pid,
        }
        if self.attributes:
            doc["attributes"] = self.attributes
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        return cls(
            name=doc["name"],
            start_ns=doc["start_ns"],
            duration_ns=doc["duration_ns"],
            attributes=dict(doc.get("attributes", {})),
            children=[cls.from_dict(c) for c in doc.get("children", [])],
            pid=doc.get("pid", os.getpid()),
        )


class _NullSpan:
    """Do-nothing stand-in yielded when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


#: Shared no-op context manager — the entire cost of a disabled hook is
#: one attribute check and returning this singleton.
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        self.span.start_ns = self._tracer._now_ns()
        return self.span

    def __exit__(self, *exc) -> None:
        self.span.duration_ns = self._tracer._now_ns() - self.span.start_ns
        self._tracer._pop(self.span)


class Tracer:
    """Collector of span trees for one process.

    Thread-safe: each thread keeps its own open-span stack, and finished
    root spans append to a shared list under a lock.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        # Anchor monotonic time to the wall clock once, so spans from
        # different processes share one timeline.
        self._anchor_wall_ns = time.time_ns()
        self._anchor_perf_ns = time.perf_counter_ns()

    def _now_ns(self) -> int:
        return self._anchor_wall_ns + (
            time.perf_counter_ns() - self._anchor_perf_ns
        )

    # -- stack bookkeeping ---------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        assert stack and stack[-1] is span, "unbalanced span nesting"
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- public API ----------------------------------------------------

    def span(self, name: str, **attributes) -> _SpanContext:
        """Context manager timing one region::

            with tracer.span("retiming.minimize", graph=g.name) as sp:
                ...
                sp.set(period=result)
        """
        return _SpanContext(self, Span(name=name, attributes=attributes))

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def absorb(self, docs: list[dict]) -> None:
        """Merge foreign (worker-process) span dicts into this tracer.

        Spans attach under the currently open span when there is one —
        so worker trees nest under the engine batch that spawned them —
        and become roots otherwise.  The foreign ``pid`` is preserved,
        which puts each worker on its own lane in the Chrome trace.
        """
        spans = [Span.from_dict(d) for d in docs]
        parent = self.current()
        if parent is not None:
            parent.children.extend(spans)
        else:
            with self._lock:
                self.roots.extend(spans)

    def export(self) -> list[dict]:
        """JSON transport of every finished root span."""
        with self._lock:
            return [s.to_dict() for s in self.roots]

    def clear(self) -> None:
        with self._lock:
            self.roots.clear()


# ----------------------------------------------------------------------
# Chrome trace-event export / import
# ----------------------------------------------------------------------


def chrome_trace_events(spans: list[Span]) -> list[dict]:
    """Flatten span trees into Chrome ``"ph": "X"`` complete events.

    Timestamps are rebased to the earliest span in the trace: wall-anchored
    nanoseconds are ~1.7e18, beyond float64's exact-integer range once
    divided into microseconds, and trace viewers only need relative time.
    """
    if not spans:
        return []
    epoch = min(s.start_ns for root in spans for s in root.walk())
    events: list[dict] = []

    def emit(span: Span) -> None:
        event = {
            "name": span.name,
            "ph": "X",
            "ts": (span.start_ns - epoch) / 1000.0,  # microseconds
            "dur": span.duration_ns / 1000.0,
            "pid": span.pid,
            "tid": span.pid,
        }
        if span.attributes:
            event["args"] = span.attributes
        events.append(event)
        for child in span.children:
            emit(child)

    for span in spans:
        emit(span)
    return events


def write_chrome_trace(path: Path | str, spans: list[Span]) -> None:
    """Write ``spans`` as a Chrome trace-event JSON file.

    Atomic (temp file + rename): an interrupted export never leaves a
    truncated trace that ``chrome://tracing`` would reject.
    """
    from ..ioutil import atomic_write_text

    doc = {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}
    atomic_write_text(path, json.dumps(doc, indent=1))


def spans_from_chrome_events(events: list[dict]) -> list[Span]:
    """Rebuild span trees from Chrome complete events (exporter inverse).

    Nesting is recovered by time containment within each ``pid`` lane:
    an event strictly inside an open one is its child.  Events produced
    by :func:`chrome_trace_events` always satisfy containment because
    child spans open after and close before their parent.
    """
    by_pid: dict[int, list[dict]] = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        by_pid.setdefault(ev.get("pid", 0), []).append(ev)

    roots: list[Span] = []
    for pid, evs in by_pid.items():
        # Parents sort before children: earlier start first, longer first.
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[Span] = []
        for ev in evs:
            span = Span(
                name=ev["name"],
                start_ns=round(ev["ts"] * 1000.0),
                duration_ns=round(ev["dur"] * 1000.0),
                attributes=dict(ev.get("args", {})),
                pid=pid,
            )
            while stack and not (
                span.start_ns >= stack[-1].start_ns
                and span.end_ns <= stack[-1].end_ns
            ):
                stack.pop()
            if stack:
                stack[-1].children.append(span)
            else:
                roots.append(span)
            stack.append(span)
    return roots


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def aggregate_spans(spans: list[Span]) -> dict[str, dict]:
    """Per-name totals across span trees.

    Returns ``name -> {"count", "total_ns", "self_ns"}`` where ``self``
    excludes time covered by child spans.
    """
    agg: dict[str, dict] = {}
    for root in spans:
        for span in root.walk():
            row = agg.setdefault(
                span.name, {"count": 0, "total_ns": 0, "self_ns": 0}
            )
            row["count"] += 1
            row["total_ns"] += span.duration_ns
            row["self_ns"] += max(0, span.self_ns())
    return agg


def format_breakdown(spans: list[Span]) -> str:
    """Human-readable per-stage table for the ``profile`` CLI."""
    agg = aggregate_spans(spans)
    if not agg:
        return "(no spans recorded)"
    total = sum(s.duration_ns for s in spans) or 1
    width = max(len(name) for name in agg)
    lines = [
        f"{'span':{width}s} {'count':>6s} {'total':>10s} {'self':>10s} {'%':>6s}"
    ]
    for name, row in sorted(
        agg.items(), key=lambda kv: kv[1]["total_ns"], reverse=True
    ):
        lines.append(
            f"{name:{width}s} {row['count']:6d} "
            f"{row['total_ns'] / 1e6:8.3f}ms {row['self_ns'] / 1e6:8.3f}ms "
            f"{100.0 * row['total_ns'] / total:5.1f}%"
        )
    return "\n".join(lines)
