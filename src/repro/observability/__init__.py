"""Zero-dependency structured tracing and metrics for the pipeline.

One module-level switch governs the whole subsystem.  Every hook in the
library is written as::

    from ..observability import OBS, span

    with span("retiming.minimize", graph=g.name) as sp:   # no-op when off
        ...
    if OBS.enabled:                                       # bulk, not per-op
        OBS.metrics.counter("vm.instructions.executed").inc(executed)

When tracing is **off** (the default) a hook costs one attribute check —
``span`` returns a shared null context manager and the metrics branch is
never taken — so the hot paths stay hot.  When **on**, spans collect into
:attr:`OBS.tracer <Observability.tracer>` and counters into
:attr:`OBS.metrics <Observability.metrics>`.

Cross-process aggregation: a worker process calls :func:`export_state` and
ships the plain-JSON result home in its payload envelope; the parent calls
:func:`absorb_state` to merge the worker's spans (on their own ``pid``
lane) and metric deltas into the run's collectors.  This is how
:class:`~repro.runner.engine.ExperimentEngine` makes a parallel sweep's
trace and counters equal a serial run's.
"""

from __future__ import annotations

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    aggregate_spans,
    chrome_trace_events,
    format_breakdown,
    spans_from_chrome_events,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "Observability",
    "Span",
    "Tracer",
    "absorb_state",
    "aggregate_spans",
    "chrome_trace_events",
    "count",
    "disable",
    "enable",
    "export_state",
    "format_breakdown",
    "span",
    "spans_from_chrome_events",
    "write_chrome_trace",
]


class Observability:
    """The process-wide tracing/metrics switchboard (singleton ``OBS``)."""

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Fresh tracer and registry; the enabled flag is unchanged."""
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()


#: The process-wide instance every hook checks.
OBS = Observability()


def enable() -> None:
    """Turn tracing and metrics collection on for this process."""
    OBS.enable()


def disable() -> None:
    OBS.disable()


def span(name: str, **attributes):
    """A tracer span when observability is on, a shared no-op otherwise."""
    if not OBS.enabled:
        return NULL_SPAN
    return OBS.tracer.span(name, **attributes)


def count(name: str, n: int = 1) -> None:
    """Guarded counter increment for call sites without a local guard."""
    if OBS.enabled:
        OBS.metrics.counter(name).inc(n)


def export_state(reset: bool = True) -> dict:
    """JSON envelope of this process's spans and metric deltas.

    With ``reset`` (the default) the collectors are cleared afterwards, so
    a long-lived worker process exports disjoint deltas per unit of work.
    """
    state = {"spans": OBS.tracer.export(), "metrics": OBS.metrics.as_dict()}
    if reset:
        OBS.tracer.clear()
        OBS.metrics.reset()
    return state


def absorb_state(state: dict | None) -> None:
    """Merge an :func:`export_state` envelope from another process."""
    if not state:
        return
    OBS.tracer.absorb(state.get("spans", []))
    OBS.metrics.merge(state.get("metrics", {}))
