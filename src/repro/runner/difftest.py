"""Randomized differential testing at sweep scale.

Generates seeded random DFGs (:mod:`repro.graph.generators`), pushes each
through every transformation order the library implements — pipelined,
unfolded, unfold-then-retime, retime-then-unfold, and all CSR variants —
and checks, per graph:

* **VM equivalence** (Theorems 4.1/4.2/4.6/4.7): every transformed program
  computes exactly the original loop's array state;
* **the order inequality** (Theorems 4.4/4.5): at a matched cycle period,
  ``S_{r,f} <= S_{f,r}`` — retime-then-unfold code is never larger than
  unfold-then-retime code.

The sweep runs through the :class:`~repro.runner.engine.ExperimentEngine`,
so it parallelizes across cores and re-runs are incremental: a 200-graph
sweep that already passed costs only cache lookups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.generators import random_dfg
from ..graph.serialize import to_json
from .engine import ExperimentEngine
from .jobs import Job, JobResult

__all__ = [
    "DIFFTEST_TRANSFORMS",
    "SweepFailure",
    "SweepReport",
    "differential_jobs",
    "differential_sweep",
]

#: Every transformation order exercised per random graph.  ``orders`` also
#: carries the Theorem 4.4/4.5 size-inequality check.
DIFFTEST_TRANSFORMS: tuple[str, ...] = (
    "original",
    "pipelined",
    "csr-pipelined",
    "unfolded",
    "csr-unfolded",
    "retime-unfold",
    "csr-retime-unfold",
    "csr-retime-unfold-periter",
    "unfold-retime",
    "csr-unfold-retime",
    "orders",
)


@dataclass(frozen=True)
class SweepFailure:
    """One failed check: which graph, which cell, what went wrong.

    ``kind`` distinguishes in-band result errors (``"error"``), violated
    theorem inequalities (``"inequality"``) and engine-level FAILED cells
    — jobs whose retries were exhausted by crashes or deadlines
    (``"failed"`` / ``"timed_out"``).
    """

    seed: int
    label: str
    kind: str  # "error" | "inequality" | "failed" | "timed_out"
    detail: str


@dataclass
class SweepReport:
    """Outcome of one differential sweep."""

    graphs: int = 0
    checks: int = 0
    equivalence_checks: int = 0
    inequality_checks: int = 0
    failures: list[SweepFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} failures)"
        lines = [
            f"differential sweep: {status}",
            f"graphs      : {self.graphs}",
            f"checks      : {self.checks} "
            f"({self.equivalence_checks} equivalence, "
            f"{self.inequality_checks} inequality)",
        ]
        for f in self.failures[:20]:
            lines.append(f"  [{f.kind}] seed={f.seed} {f.label}: {f.detail}")
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def _graph_for_seed(seed: int, max_nodes: int, max_extra_edges: int) -> str:
    """Serialized random DFG for one seed (deterministic, process-stable)."""
    rng = random.Random(seed)
    g = random_dfg(
        rng,
        num_nodes=rng.randint(1, max_nodes),
        extra_edges=rng.randint(0, max_extra_edges),
        max_delay=3,
        name=f"rand{seed}",
    )
    return to_json(g, indent=None)


def differential_jobs(
    seed: int,
    factors: tuple[int, ...] = (2, 3),
    trip_counts: tuple[int, ...] = (0, 1, 7, 12),
    max_nodes: int = 6,
    max_extra_edges: int = 5,
    transforms: tuple[str, ...] = DIFFTEST_TRANSFORMS,
) -> list[Job]:
    """All differential-test jobs for one seeded random graph."""
    graph_json = _graph_for_seed(seed, max_nodes, max_extra_edges)
    factorless = {"original", "pipelined", "csr-pipelined"}
    jobs: list[Job] = []
    for t in transforms:
        for f in [1] if t in factorless else list(factors):
            # One trip count suffices for the size inequality; equivalence
            # runs the full trip-count sweep.
            ns = trip_counts[-1:] if t == "orders" else trip_counts
            for n in ns:
                jobs.append(
                    Job(
                        transform=t,
                        graph_json=graph_json,
                        factor=f,
                        trip_count=n,
                        verify=True,
                    )
                )
    return jobs


def _check(result: JobResult, seed: int, report: SweepReport) -> None:
    payload = result.payload
    report.checks += 1
    if not result.ok:
        detail = f"{payload.get('error_type')}: {payload.get('error')}"
        if result.outcome is not None and result.outcome.status != "ok":
            # An engine-level FAILED cell: the attempts themselves died.
            # Surface the retry history alongside the final error.
            detail += (
                f" (attempts={result.outcome.attempts}, "
                f"faults: {', '.join(result.outcome.faults) or 'none'})"
            )
        report.failures.append(
            SweepFailure(
                seed=seed,
                label=result.job.label,
                kind=result.status if result.status != "ok" else "error",
                detail=detail,
            )
        )
        return
    if result.job.transform == "orders":
        report.inequality_checks += 1
        if not payload.get("inequality_holds"):
            report.failures.append(
                SweepFailure(
                    seed=seed,
                    label=result.job.label,
                    kind="inequality",
                    detail=(
                        f"S_rf={payload.get('size_retime_unfold')} > "
                        f"S_fr={payload.get('size_unfold_retime')} "
                        f"at period {payload.get('period')}"
                    ),
                )
            )
    if result.job.transform != "original":
        report.equivalence_checks += 1


def differential_sweep(
    num_graphs: int = 200,
    seed: int = 0,
    factors: tuple[int, ...] = (2, 3),
    trip_counts: tuple[int, ...] = (0, 1, 7, 12),
    max_nodes: int = 6,
    max_extra_edges: int = 5,
    engine: ExperimentEngine | None = None,
    transforms: tuple[str, ...] = DIFFTEST_TRANSFORMS,
) -> SweepReport:
    """Run the randomized differential sweep and collect a report.

    Graph seeds are ``seed .. seed + num_graphs - 1``; everything
    downstream is a deterministic function of the seed, so the sweep is
    reproducible (and cacheable) across machines and process pools.
    """
    engine = engine if engine is not None else ExperimentEngine()
    report = SweepReport(graphs=num_graphs)
    all_jobs: list[Job] = []
    job_seeds: list[int] = []
    for s in range(seed, seed + num_graphs):
        jobs = differential_jobs(
            s,
            factors=factors,
            trip_counts=trip_counts,
            max_nodes=max_nodes,
            max_extra_edges=max_extra_edges,
            transforms=transforms,
        )
        all_jobs.extend(jobs)
        job_seeds.extend([s] * len(jobs))
    for result, s in zip(engine.run_jobs(all_jobs), job_seeds):
        _check(result, s, report)
    return report
