"""Randomized differential testing at sweep scale.

Generates seeded random DFGs (:mod:`repro.graph.generators`), pushes each
through every transformation order the library implements — pipelined,
unfolded, unfold-then-retime, retime-then-unfold, and all CSR variants —
and checks, per graph:

* **VM equivalence** (Theorems 4.1/4.2/4.6/4.7): every transformed program
  computes exactly the original loop's array state;
* **the order inequality** (Theorems 4.4/4.5): at a matched cycle period,
  ``S_{r,f} <= S_{f,r}`` — retime-then-unfold code is never larger than
  unfold-then-retime code;
* **ground-truth optimality** (``oracle=True`` / ``--oracle``): one
  ``"oracle"`` job per graph pins ``minimize_cycle_period`` (all three
  methods), rotation scheduling and modulo scheduling against the exact
  solvers of :mod:`repro.optimal` — certified bounds, per-graph
  optimality gaps (:class:`OracleRecord`), and a rendered gap table.

The sweep runs through the :class:`~repro.runner.engine.ExperimentEngine`,
so it parallelizes across cores and re-runs are incremental: a 200-graph
sweep that already passed costs only cache lookups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.generators import random_dfg
from ..graph.serialize import to_json
from .engine import ExperimentEngine
from .jobs import Job, JobResult

__all__ = [
    "DIFFTEST_TRANSFORMS",
    "OracleRecord",
    "SweepFailure",
    "SweepReport",
    "differential_jobs",
    "differential_sweep",
]

#: Every transformation order exercised per random graph.  ``orders`` also
#: carries the Theorem 4.4/4.5 size-inequality check.
DIFFTEST_TRANSFORMS: tuple[str, ...] = (
    "original",
    "pipelined",
    "csr-pipelined",
    "unfolded",
    "csr-unfolded",
    "retime-unfold",
    "csr-retime-unfold",
    "csr-retime-unfold-periter",
    "unfold-retime",
    "csr-unfold-retime",
    "orders",
)


@dataclass(frozen=True)
class SweepFailure:
    """One failed check: which graph, which cell, what went wrong.

    ``kind`` distinguishes in-band result errors (``"error"``), violated
    theorem inequalities (``"inequality"``) and engine-level FAILED cells
    — jobs whose retries were exhausted by crashes or deadlines
    (``"failed"`` / ``"timed_out"``).
    """

    seed: int
    label: str
    kind: str  # "error" | "inequality" | "oracle" | "failed" | "timed_out"
    detail: str


@dataclass(frozen=True)
class OracleRecord:
    """Per-graph oracle outcome: the gap-table row.

    ``status`` mirrors :attr:`~repro.runner.jobs.JobResult.status` —
    ``"ok"`` rows carry the certified numbers; ``"error"`` / ``"failed"``
    / ``"timed_out"`` rows carry only the failure detail and render as
    marker cells in the gap table.
    """

    seed: int
    label: str
    status: str
    period: int | None = None
    optimum_lower: int | None = None
    proven: bool = False
    gap: int | None = None
    detail: str = ""

    def as_row(self) -> dict:
        """The mapping :func:`repro.analysis.tables.format_gap_table` eats."""
        return {
            "seed": self.seed,
            "label": self.label,
            "status": self.status,
            "period": self.period,
            "optimum_lower": self.optimum_lower,
            "proven": self.proven,
            "gap": self.gap,
            "error": self.detail,
        }


@dataclass
class SweepReport:
    """Outcome of one differential sweep."""

    graphs: int = 0
    checks: int = 0
    equivalence_checks: int = 0
    inequality_checks: int = 0
    oracle_checks: int = 0
    failures: list[SweepFailure] = field(default_factory=list)
    oracle_records: list[OracleRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def max_gap(self) -> int:
        """Largest recorded oracle gap (0 when no oracle jobs ran)."""
        gaps = [r.gap for r in self.oracle_records if r.gap is not None]
        return max(gaps) if gaps else 0

    def gap_table(self) -> str:
        """The per-graph optimality-gap table (``--oracle`` runs)."""
        from ..analysis.tables import format_gap_table

        return format_gap_table(r.as_row() for r in self.oracle_records)

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} failures)"
        lines = [
            f"differential sweep: {status}",
            f"graphs      : {self.graphs}",
            f"checks      : {self.checks} "
            f"({self.equivalence_checks} equivalence, "
            f"{self.inequality_checks} inequality)",
        ]
        if self.oracle_checks:
            proven = sum(
                1 for r in self.oracle_records if r.status == "ok" and r.proven
            )
            lines.append(
                f"oracle      : {self.oracle_checks} graphs, "
                f"{proven} proven optimal, max gap {self.max_gap}"
            )
        for f in self.failures[:20]:
            lines.append(f"  [{f.kind}] seed={f.seed} {f.label}: {f.detail}")
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def _graph_for_seed(seed: int, max_nodes: int, max_extra_edges: int) -> str:
    """Serialized random DFG for one seed (deterministic, process-stable)."""
    rng = random.Random(seed)
    g = random_dfg(
        rng,
        num_nodes=rng.randint(1, max_nodes),
        extra_edges=rng.randint(0, max_extra_edges),
        max_delay=3,
        name=f"rand{seed}",
    )
    return to_json(g, indent=None)


def differential_jobs(
    seed: int,
    factors: tuple[int, ...] = (2, 3),
    trip_counts: tuple[int, ...] = (0, 1, 7, 12),
    max_nodes: int = 6,
    max_extra_edges: int = 5,
    transforms: tuple[str, ...] = DIFFTEST_TRANSFORMS,
    oracle: bool = False,
    oracle_timeout: float | None = None,
) -> list[Job]:
    """All differential-test jobs for one seeded random graph.

    With ``oracle``, one additional ``"oracle"`` job per graph runs the
    exact solvers (bounded by ``oracle_timeout`` seconds, if given).
    """
    graph_json = _graph_for_seed(seed, max_nodes, max_extra_edges)
    factorless = {"original", "pipelined", "csr-pipelined"}
    jobs: list[Job] = []
    for t in transforms:
        for f in [1] if t in factorless else list(factors):
            # One trip count suffices for the size inequality; equivalence
            # runs the full trip-count sweep.
            ns = trip_counts[-1:] if t == "orders" else trip_counts
            for n in ns:
                jobs.append(
                    Job(
                        transform=t,
                        graph_json=graph_json,
                        factor=f,
                        trip_count=n,
                        verify=True,
                    )
                )
    if oracle:
        jobs.append(
            Job(
                transform="oracle",
                graph_json=graph_json,
                factor=1,
                trip_count=0,
                verify=False,
                oracle_timeout=oracle_timeout,
            )
        )
    return jobs


def _check(result: JobResult, seed: int, report: SweepReport) -> None:
    payload = result.payload
    report.checks += 1
    graph_name = result.job.label.split("/", 1)[0]
    if result.job.transform == "oracle":
        report.oracle_checks += 1
    if not result.ok:
        detail = f"{payload.get('error_type')}: {payload.get('error')}"
        if result.outcome is not None and result.outcome.status != "ok":
            # An engine-level FAILED cell: the attempts themselves died.
            # Surface the retry history alongside the final error.
            detail += (
                f" (attempts={result.outcome.attempts}, "
                f"faults: {', '.join(result.outcome.faults) or 'none'})"
            )
        if result.job.transform == "oracle":
            # A dead oracle job still gets a gap-table row, rendered as
            # a FAILED / TIMED_OUT / ERROR marker.
            report.oracle_records.append(
                OracleRecord(
                    seed=seed,
                    label=graph_name,
                    status=result.status if result.status != "ok" else "error",
                    detail=detail,
                )
            )
        report.failures.append(
            SweepFailure(
                seed=seed,
                label=result.job.label,
                kind=result.status if result.status != "ok" else "error",
                detail=detail,
            )
        )
        return
    if result.job.transform == "oracle":
        report.oracle_records.append(
            OracleRecord(
                seed=seed,
                label=graph_name,
                status="ok",
                period=payload.get("period_optimal"),
                optimum_lower=payload.get("optimum_lower"),
                proven=bool(payload.get("proven")),
                gap=payload.get("gap"),
            )
        )
        if not payload.get("bounds_ok", True):
            report.failures.append(
                SweepFailure(
                    seed=seed,
                    label=result.job.label,
                    kind="oracle",
                    detail="; ".join(payload.get("violations", [])),
                )
            )
        elif payload.get("proven") and payload.get("gap"):
            report.failures.append(
                SweepFailure(
                    seed=seed,
                    label=result.job.label,
                    kind="oracle",
                    detail=(
                        f"gap {payload.get('gap')} at proven optimum "
                        f"{payload.get('period_optimal')}"
                    ),
                )
            )
        return
    if result.job.transform == "orders":
        report.inequality_checks += 1
        if not payload.get("inequality_holds"):
            report.failures.append(
                SweepFailure(
                    seed=seed,
                    label=result.job.label,
                    kind="inequality",
                    detail=(
                        f"S_rf={payload.get('size_retime_unfold')} > "
                        f"S_fr={payload.get('size_unfold_retime')} "
                        f"at period {payload.get('period')}"
                    ),
                )
            )
    if result.job.transform != "original":
        report.equivalence_checks += 1


def differential_sweep(
    num_graphs: int = 200,
    seed: int = 0,
    factors: tuple[int, ...] = (2, 3),
    trip_counts: tuple[int, ...] = (0, 1, 7, 12),
    max_nodes: int = 6,
    max_extra_edges: int = 5,
    engine: ExperimentEngine | None = None,
    transforms: tuple[str, ...] = DIFFTEST_TRANSFORMS,
    oracle: bool = False,
    oracle_timeout: float | None = None,
) -> SweepReport:
    """Run the randomized differential sweep and collect a report.

    Graph seeds are ``seed .. seed + num_graphs - 1``; everything
    downstream is a deterministic function of the seed, so the sweep is
    reproducible (and cacheable) across machines and process pools.
    ``oracle`` adds the ground-truth optimality battery per graph.
    """
    engine = engine if engine is not None else ExperimentEngine()
    report = SweepReport(graphs=num_graphs)
    all_jobs: list[Job] = []
    job_seeds: list[int] = []
    for s in range(seed, seed + num_graphs):
        jobs = differential_jobs(
            s,
            factors=factors,
            trip_counts=trip_counts,
            max_nodes=max_nodes,
            max_extra_edges=max_extra_edges,
            transforms=transforms,
            oracle=oracle,
            oracle_timeout=oracle_timeout,
        )
        all_jobs.extend(jobs)
        job_seeds.extend([s] * len(jobs))
    for result, s in zip(engine.run_jobs(all_jobs), job_seeds):
        _check(result, s, report)
    return report
