"""Durable write-ahead run journal: crash-consistent sweeps and tables.

A journaled run appends one checksummed JSONL record per event to
``<run-dir>/journal.jsonl`` — ``run.start``, ``job.submitted``,
``job.leased``, ``job.lease_expired``, ``job.done``, ``job.failed``,
``run.end`` — each written as a single
``write()`` call, flushed and fsync'd before the run proceeds.  A
``kill -9`` (or power loss) at any instant therefore leaves a journal
whose every record but possibly the last is intact, and the recovery
scanner (:func:`scan_journal`) tolerates exactly that: a torn *final*
line is dropped; a corrupt line followed by valid ones is real damage
and raises :class:`JournalError`.

Resume (``--resume <run-dir>``) replays the journal: units with a
``job.done``/``job.failed`` record are *rehydrated* — their payloads come
straight from the journal (the :class:`~repro.runner.cache.ResultCache`
serves any remaining hits as usual) and are never re-executed — while
pending/in-flight units run normally.  Payload bytes are recorded
verbatim, so a resumed run's output is bit-identical to an uninterrupted
one.

Records are content-checksummed (SHA-256 over the canonical JSON of
``{seq, type, data}``) and sequence-numbered, so truncation, torn
writes, reordering and mid-file corruption are all detectable.  The
``journal.write`` fault site (:mod:`repro.runner.resilience`) simulates
the parent dying inside an append — a truncated record hits the disk and
the append raises — which is how the chaos tests drive the torn-line
recovery path deterministically.

The journal is **off by default**: an engine with ``journal is None``
pays nothing (the same is-``None`` guard pattern as the fault plan and
the observability layer).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..observability import count
from .resilience import FaultInjected, journal_write_point

__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_VERSION",
    "RECORD_TYPES",
    "JournalError",
    "JournalScan",
    "MultiRunScan",
    "RunCheckpoint",
    "RunDirScan",
    "RunJournal",
    "SkippedInput",
    "scan_journal",
    "scan_run_dirs",
]

#: Journal file name inside a run directory.
JOURNAL_NAME = "journal.jsonl"

#: Bump on any record-layout change; the scanner rejects unknown versions.
JOURNAL_VERSION = 1

#: The record types a journal may contain, in lifecycle order.
#: ``job.leased``/``job.lease_expired`` are distributed-fabric provenance
#: (which worker held a unit, and when a lease died and the unit was
#: requeued); they never affect resume — completion is still decided
#: solely by ``job.done``/``job.failed``.
RECORD_TYPES: tuple[str, ...] = (
    "run.start",
    "job.submitted",
    "job.leased",
    "job.lease_expired",
    "job.done",
    "job.failed",
    "run.end",
)


class JournalError(Exception):
    """A journal that cannot be trusted: corruption before the final line,
    an unknown version, or a resume against the wrong command."""


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _checksum(seq: int, rtype: str, data: dict) -> str:
    body = _canonical({"seq": seq, "type": rtype, "data": data})
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def _encode_record(seq: int, rtype: str, data: dict) -> str:
    record = {
        "v": JOURNAL_VERSION,
        "seq": seq,
        "type": rtype,
        "data": data,
        "sha": _checksum(seq, rtype, data),
    }
    return _canonical(record)


def _decode_record(line: str) -> dict:
    """Parse and verify one journal line; raises ``ValueError`` if torn."""
    doc = json.loads(line)
    if not isinstance(doc, dict):
        raise ValueError("journal record is not an object")
    if doc.get("v") != JOURNAL_VERSION:
        raise JournalError(f"unsupported journal version {doc.get('v')!r}")
    seq, rtype, data = doc.get("seq"), doc.get("type"), doc.get("data")
    if not isinstance(seq, int) or rtype not in RECORD_TYPES:
        raise ValueError(f"malformed journal record (seq={seq!r}, type={rtype!r})")
    if not isinstance(data, dict):
        raise ValueError("malformed journal record data")
    if doc.get("sha") != _checksum(seq, rtype, data):
        raise ValueError(f"journal record {seq} checksum mismatch")
    return doc


class RunJournal:
    """Append-only, fsync'd, checksummed event log for one run directory.

    Opening is lazy: the file is created (and any existing journal
    scanned for its last sequence number) on the first append, so
    constructing a journal never touches the disk.
    """

    def __init__(self, run_dir: Path | str, fsync: bool = True) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / JOURNAL_NAME
        self.fsync = fsync
        self.records_written = 0
        self._fh = None
        self._seq = 0

    # -- writing -------------------------------------------------------

    def _open(self) -> None:
        if self._fh is not None:
            return
        self.run_dir.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            # Resume continues the sequence where the scan left off.  A
            # torn final line must be truncated away first: appending
            # after the partial record would fuse it with the next one
            # into mid-file corruption no future scan could tolerate.
            scan = scan_journal(self.path)
            self._seq = scan.last_seq
            if scan.torn:
                self._truncate_torn_tail(len(scan.records))
        self._fh = open(self.path, "a")

    def _truncate_torn_tail(self, keep_records: int) -> None:
        """Cut the file back to the end of its last valid record."""
        data = self.path.read_bytes()
        offset = kept = 0
        for line in data.splitlines(keepends=True):
            if kept >= keep_records:
                break
            offset += len(line)
            if line.strip():
                kept += 1
        with open(self.path, "rb+") as fh:
            fh.truncate(offset)

    def append(self, rtype: str, data: dict) -> int:
        """Durably append one record; returns its sequence number.

        The record is a single ``write()`` of one line, flushed and
        fsync'd before returning — after ``append`` returns, the record
        survives any crash.  The ``journal.write`` fault site fires
        here: a truncated prefix of the line is written (torn write) and
        :class:`FaultInjected` raised, simulating death mid-append.
        """
        if rtype not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {rtype!r}")
        self._open()
        self._seq += 1
        line = _encode_record(self._seq, rtype, data)
        occurrence = journal_write_point(rtype)
        if occurrence is not None:
            # Simulate the writer dying mid-append: half the record (no
            # newline) reaches stable storage, then the "crash".
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            raise FaultInjected("journal.write", rtype, occurrence)
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.records_written += 1
        count("journal.records")
        return self._seq

    # -- record helpers ------------------------------------------------

    def run_start(self, command: str, config: dict, resumed: bool = False) -> None:
        self.append(
            "run.start",
            {"command": command, "config": config, "resumed": resumed},
        )

    def job_submitted(self, key: str, label: str) -> None:
        self.append("job.submitted", {"key": key, "label": label})

    def job_leased(self, key: str, label: str, worker: str, epoch: int) -> None:
        """A distributed worker took a lease on this unit (``epoch`` is the
        lease generation — completions carrying an older epoch are zombie
        duplicates and were discarded by the coordinator)."""
        self.append(
            "job.leased",
            {"key": key, "label": label, "worker": worker, "epoch": epoch},
        )

    def job_lease_expired(
        self,
        key: str,
        label: str,
        worker: str,
        epoch: int,
        age: float,
        requeued: bool,
    ) -> None:
        """A lease died unrenewed (dead host, partition, hang) after ``age``
        seconds.  ``requeued`` reports whether the unit went back on the
        backlog or exhausted its dispatch budget and failed."""
        self.append(
            "job.lease_expired",
            {
                "key": key,
                "label": label,
                "worker": worker,
                "epoch": epoch,
                "age": round(age, 6),
                "requeued": requeued,
            },
        )

    def job_done(
        self,
        key: str,
        label: str,
        payload: dict,
        cached: bool = False,
        outcome: dict | None = None,
    ) -> None:
        self.append(
            "job.done",
            {
                "key": key,
                "label": label,
                "payload": payload,
                "cached": cached,
                "outcome": outcome,
            },
        )

    def job_failed(
        self, key: str, label: str, payload: dict, outcome: dict | None = None
    ) -> None:
        self.append(
            "job.failed",
            {"key": key, "label": label, "payload": payload, "outcome": outcome},
        )

    def run_end(self, status: str = "ok", stats: dict | None = None) -> None:
        self.append("run.end", {"status": status, "stats": stats or {}})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalScan:
    """Recovered state of one journal file.

    ``torn`` reports that the final line was incomplete (the crash
    signature) and was dropped; everything in ``records`` passed its
    checksum.
    """

    path: Path
    records: list[dict] = field(default_factory=list)
    torn: bool = False

    @property
    def last_seq(self) -> int:
        return self.records[-1]["seq"] if self.records else 0

    @property
    def finished(self) -> bool:
        """A ``run.end`` record exists — the run completed."""
        return any(r["type"] == "run.end" for r in self.records)

    def start_record(self) -> dict | None:
        """The first ``run.start`` data (command + config), if recorded."""
        for r in self.records:
            if r["type"] == "run.start":
                return r["data"]
        return None

    def completed(self) -> dict[str, dict]:
        """``key -> job.done/job.failed data`` for every finished unit.

        The latest record per key wins (keys are content addresses, so a
        duplicate means the identical unit — replays across resumes are
        harmless).
        """
        done: dict[str, dict] = {}
        for r in self.records:
            if r["type"] in ("job.done", "job.failed"):
                done[r["data"]["key"]] = r["data"]
        return done

    def submitted(self) -> dict[str, str]:
        """``key -> label`` of every unit that entered the run."""
        out: dict[str, str] = {}
        for r in self.records:
            if r["type"] == "job.submitted":
                out[r["data"]["key"]] = r["data"]["label"]
        return out

    def pending(self) -> dict[str, str]:
        """Submitted units with no completion record — the resume work."""
        done = self.completed()
        return {k: v for k, v in self.submitted().items() if k not in done}


def scan_journal(path: Path | str) -> JournalScan:
    """Read a journal, verifying every record; tolerates a torn final line.

    A line that fails to parse or checksum is the *crash signature* when
    it is the last non-empty line: it is dropped and ``torn`` is set.
    The same failure anywhere earlier means the file was damaged after
    the fact (bit rot, truncation in the middle) and raises
    :class:`JournalError` — resuming from an untrustworthy journal would
    silently corrupt results.
    """
    path = Path(path)
    try:
        raw = path.read_text(errors="replace")
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    lines = [ln for ln in raw.split("\n") if ln.strip()]
    scan = JournalScan(path=path)
    expected_seq = None
    for i, line in enumerate(lines):
        try:
            doc = _decode_record(line)
            if expected_seq is not None and doc["seq"] != expected_seq:
                raise ValueError(
                    f"journal sequence gap: expected {expected_seq}, "
                    f"got {doc['seq']}"
                )
        except JournalError:
            raise
        except ValueError as exc:
            if i == len(lines) - 1:
                scan.torn = True
                break
            raise JournalError(
                f"corrupt journal record at line {i + 1} of {path}: {exc}"
            ) from exc
        scan.records.append(doc)
        expected_seq = doc["seq"] + 1
    return scan


# ----------------------------------------------------------------------
# Read-only multi-run scanning (the report pipeline's loader).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunDirScan:
    """One successfully scanned journal inside a runs tree.

    ``name`` is the journal's path relative to the scan root it was found
    under — a machine-stable identifier that two scans of equal trees
    agree on regardless of where the trees live on disk.
    """

    path: Path
    name: str
    scan: JournalScan

    @property
    def command(self) -> str | None:
        start = self.scan.start_record()
        return start["command"] if start else None

    @property
    def config(self) -> dict:
        start = self.scan.start_record()
        return dict(start["config"]) if start else {}


@dataclass(frozen=True)
class SkippedInput:
    """One file the scanner refused: where it was and why.

    The multi-run scanner *never* raises for a bad input file — a runs
    directory accumulated across releases and crashes will contain junk,
    and one damaged journal must degrade to a reported skip, not kill
    the whole report.
    """

    path: Path
    name: str
    reason: str


@dataclass
class MultiRunScan:
    """Everything usable found under one or more runs directories."""

    journals: list[RunDirScan] = field(default_factory=list)
    outcomes: list[tuple[str, dict]] = field(default_factory=list)  # (name, doc)
    benches: list[tuple[str, dict]] = field(default_factory=list)  # (name, doc)
    skipped: list[SkippedInput] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.journals or self.outcomes or self.benches)


def _classify_json(doc: object) -> str | None:
    """Which report input a parsed JSON document is, if any."""
    if not isinstance(doc, dict):
        return None
    if isinstance(doc.get("outcomes"), list) and isinstance(doc.get("stats"), dict):
        return "outcomes"
    if isinstance(doc.get("results"), dict) and "benchmark" in doc:
        return "bench"
    return None


def scan_run_dirs(paths: list[Path | str] | tuple) -> MultiRunScan:
    """Read-only recursive scan of run directories for report inputs.

    Recognized inputs:

    * ``journal.jsonl`` files — scanned with :func:`scan_journal`.  A
      torn final line is tolerated as usual (the crash signature); a
      journal with mid-file damage or an unknown record version is
      *skipped and reported*, never fatal — unlike ``--resume``, the
      report only aggregates, so a distrusted journal costs one input,
      not correctness.
    * ``*.json`` files shaped like ``--outcomes-out`` documents
      (``{"stats": ..., "outcomes": [...]}``).
    * ``BENCH_*.json`` benchmark baselines (``{"benchmark": ...,
      "results": {...}}``).

    Anything else with a ``.json``/``.jsonl`` extension is recorded in
    ``skipped`` with a reason; other files (gap tables, text reports,
    cache entries) are ignored silently.  Results are deterministic: the
    walk is sorted, and names are root-relative, so equal trees scan
    equal regardless of location or argument order.
    """
    out = MultiRunScan()
    seen: set[Path] = set()
    for root in paths:
        root = Path(root)
        if not root.exists():
            out.skipped.append(
                SkippedInput(path=root, name=str(root), reason="does not exist")
            )
            continue
        files = [root] if root.is_file() else sorted(
            p for p in root.rglob("*") if p.is_file()
        )
        for path in files:
            real = path.resolve()
            if real in seen:
                continue
            seen.add(real)
            # Names are root-relative but keep the root's basename as a
            # prefix, so two roots that each hold a ``journal.jsonl``
            # stay distinct (and equal trees still scan equal regardless
            # of where they live or the argument order).
            name = (
                path.name
                if root.is_file()
                else f"{root.name}/{path.relative_to(root)}"
            )
            _scan_one_file(path, name, out)
    out.journals.sort(key=lambda j: j.name)
    out.outcomes.sort(key=lambda kv: kv[0])
    out.benches.sort(key=lambda kv: kv[0])
    out.skipped.sort(key=lambda s: s.name)
    return out


def _scan_one_file(path: Path, name: str, out: MultiRunScan) -> None:
    if path.name == JOURNAL_NAME or path.suffix == ".jsonl":
        try:
            scan = scan_journal(path)
        except JournalError as exc:
            # Reasons must be location-independent (golden tests, equal
            # trees scanning equal): report the root-relative name, not
            # wherever the tree happens to live.
            reason = str(exc).replace(str(path), name)
            out.skipped.append(SkippedInput(path=path, name=name, reason=reason))
            return
        if not scan.records:
            out.skipped.append(
                SkippedInput(path=path, name=name, reason="no valid journal records")
            )
            return
        out.journals.append(RunDirScan(path=path, name=name, scan=scan))
        return
    if path.suffix == ".json":
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            out.skipped.append(
                SkippedInput(path=path, name=name, reason=f"unparseable JSON: {exc}")
            )
            return
        kind = _classify_json(doc)
        if kind == "outcomes":
            out.outcomes.append((name, doc))
        elif kind == "bench":
            out.benches.append((name, doc))
        else:
            out.skipped.append(
                SkippedInput(
                    path=path,
                    name=name,
                    reason="unrecognized JSON document (not outcomes or BENCH)",
                )
            )


class RunCheckpoint:
    """CLI glue: one journal lifecycle around one engine run.

    Fresh run (``--journal DIR``)::

        ck = RunCheckpoint(run_dir)
        ck.attach(engine, "sweep", config)      # run.start + live journal
        ... run ...
        ck.finish(engine)                       # run.end

    Resume (``--resume DIR``)::

        ck = RunCheckpoint(run_dir, resume=True)
        config = ck.restore_config("sweep")     # the recorded parameters
        ck.attach(engine, "sweep", config)      # rehydrates completed units
        ... run ...
        ck.finish(engine)
    """

    def __init__(self, run_dir: Path | str, resume: bool = False) -> None:
        self.run_dir = Path(run_dir)
        self.resume = resume
        self.journal = RunJournal(self.run_dir)
        self._scan: JournalScan | None = None

    def scan(self) -> JournalScan:
        if self._scan is None:
            self._scan = scan_journal(self.journal.path)
        return self._scan

    def restore_config(self, command: str) -> dict:
        """The recorded run parameters; validates the command matches."""
        start = self.scan().start_record()
        if start is None:
            raise JournalError(
                f"journal {self.journal.path} has no run.start record to resume"
            )
        if start["command"] != command:
            raise JournalError(
                f"journal {self.journal.path} records a "
                f"'{start['command']}' run; cannot resume it as '{command}'"
            )
        return start["config"]

    def attach(self, engine, command: str, config: dict) -> None:
        """Wire the journal into ``engine`` and write the ``run.start``.

        On resume, every completed unit from the scan is loaded into the
        engine's resume state first, so the run re-executes only
        pending/in-flight units.
        """
        if self.resume:
            engine.load_resume_state(self.scan())
        engine.journal = self.journal
        self.journal.run_start(command, config, resumed=self.resume)

    def finish(self, engine, status: str = "ok") -> None:
        s = engine.stats
        self.journal.run_end(
            status,
            stats={
                "calls": s.calls,
                "computed": s.computed,
                "resumed": s.resumed,
                "failed": s.failed,
                "timed_out": s.timed_out,
                "respawned": s.respawned,
            },
        )
        self.journal.close()
