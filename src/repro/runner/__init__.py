"""Parallel cached experiment engine.

The sweep infrastructure behind the paper tables, the benchmark harness
and the randomized differential tests: a job matrix
(workload x transformation x unfolding factor x trip count) fanned across
a process pool, backed by a content-addressed on-disk result cache keyed
on the serialized DFG, the transformation parameters and a digest of the
library sources — so re-runs are incremental and a cache hit always means
"same code, same input".

See ``docs/RUNNER.md`` for the cache-key scheme and invalidation rules,
and ``docs/RESILIENCE.md`` for fault injection, retry/backoff semantics
and the FAILED-cell output contract.
"""

from .cache import (
    CACHE_SCHEMA,
    QUARANTINE_CAP,
    QUARANTINE_DIR,
    CacheStats,
    NullCache,
    ResultCache,
    cache_key,
    code_version,
    default_cache_dir,
)
from .difftest import (
    DIFFTEST_TRANSFORMS,
    SweepFailure,
    SweepReport,
    differential_jobs,
    differential_sweep,
)
from .engine import EngineStats, ExperimentEngine, default_engine
from .jobs import TRANSFORMS, Job, JobResult, execute_job, jobs_for_matrix
from .journal import (
    JOURNAL_NAME,
    JournalError,
    JournalScan,
    RunCheckpoint,
    RunJournal,
    scan_journal,
)
from .remote import LeaseCoordinator, RemoteFabric, run_task_local
from .supervisor import SupervisedPool, sweep_orphan_heartbeats
from .resilience import (
    FAULT_PLAN_ENV,
    FAULT_SITES,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    JobOutcome,
    JobTimeoutError,
    RetryPolicy,
    run_attempts,
)

__all__ = [
    "CACHE_SCHEMA",
    "QUARANTINE_CAP",
    "QUARANTINE_DIR",
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "JobOutcome",
    "JobTimeoutError",
    "RetryPolicy",
    "run_attempts",
    "JOURNAL_NAME",
    "JournalError",
    "JournalScan",
    "RunCheckpoint",
    "RunJournal",
    "LeaseCoordinator",
    "RemoteFabric",
    "SupervisedPool",
    "run_task_local",
    "scan_journal",
    "sweep_orphan_heartbeats",
    "CacheStats",
    "NullCache",
    "ResultCache",
    "cache_key",
    "code_version",
    "default_cache_dir",
    "DIFFTEST_TRANSFORMS",
    "SweepFailure",
    "SweepReport",
    "differential_jobs",
    "differential_sweep",
    "EngineStats",
    "ExperimentEngine",
    "default_engine",
    "TRANSFORMS",
    "Job",
    "JobResult",
    "execute_job",
    "jobs_for_matrix",
]
