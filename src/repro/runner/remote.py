"""Distributed execution fabric: leased work units over HTTP workers.

The missing multi-host half of the supervised pool (ROADMAP item 1):
instead of forking worker *processes* that share the parent's memory,
the :class:`RemoteFabric` publishes the engine's work units on a tiny
HTTP *work plane* and any number of worker processes — spawned locally
(``--remote-workers N``) or started by hand on other hosts
(``python -m repro worker --connect HOST:PORT``) — pull them under
**time-bounded leases**:

* a worker ``POST /v1/work/lease``\\ s a unit and must renew the lease by
  heartbeat (``/v1/work/renew``) while computing; the coordinator's
  monitor expires unrenewed leases (dead host, network partition, hang)
  and **requeues** the unit, budgeted by the run's
  :class:`~repro.runner.resilience.RetryPolicy` exactly like the
  supervised pool's respawn/requeue path;
* every lease grant bumps the unit's **epoch**.  A completion is
  accepted only if it carries the current epoch and the unit has no
  result yet — the late completion of a zombie worker (partitioned,
  paused, resumed after its lease expired and the unit was re-leased)
  arrives with a stale epoch and is **discarded**, so a unit completes
  *exactly once* however chaotic the fleet:  ``completed + failed +
  timed_out == submitted`` and a journaled run carries exactly one
  ``job.done``/``job.failed`` record per unit;
* lease grants and expiries are journaled (``job.leased`` /
  ``job.lease_expired``) through the run's fsync'd
  :class:`~repro.runner.journal.RunJournal`, giving requeues durable
  provenance; journal appends and ``on_result`` callbacks happen only on
  the fabric's run loop thread (the journal is not thread-safe), with
  HTTP handler threads merely enqueueing events;
* when no worker shows up (or the whole fleet dies), the fabric
  **degrades to local execution** of the remaining units instead of
  hanging — a distributed run can always finish on the coordinator
  alone.

Results are envelopes from the same
:func:`repro.runner.engine._pool_worker` body the process pools run, in
submission order — a distributed run's output is bit-identical to a
serial one's.  Only allowlisted module-level functions
(:data:`REMOTE_FNS`) can be named in a work unit; the worker never
imports or executes arbitrary callables from the wire.
"""

from __future__ import annotations

import importlib
import json
import os
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from .. import observability
from ..observability import count
from . import resilience
from .resilience import JobOutcome, RetryPolicy, failure_payload

__all__ = [
    "LeaseCoordinator",
    "REMOTE_FNS",
    "RemoteFabric",
    "fn_name",
    "resolve_fn",
    "run_task_local",
    "run_wire_task_local",
    "task_from_wire",
    "wire_task",
]

#: The allowlist of functions a work unit may name on the wire, keyed by
#: ``"module:qualname"``.  Workers resolve strictly through this table —
#: a coordinator (or an attacker reaching the work plane) cannot make a
#: worker import and execute arbitrary code.
REMOTE_FNS: dict[str, tuple[str, str]] = {
    "repro.runner.jobs:execute_job": ("repro.runner.jobs", "execute_job"),
    "repro.server.work:analyze_graph": ("repro.server.work", "analyze_graph"),
}


def fn_name(fn) -> str:
    """The wire name of an allowlisted worker function."""
    name = f"{fn.__module__}:{fn.__qualname__}"
    if name not in REMOTE_FNS:
        raise ValueError(
            f"{name} is not registered for remote execution "
            f"(allowlist: {sorted(REMOTE_FNS)})"
        )
    return name


def resolve_fn(name: str):
    """Import and return an allowlisted function by wire name."""
    entry = REMOTE_FNS.get(name)
    if entry is None:
        raise ValueError(
            f"function {name!r} is not registered for remote execution"
        )
    module, attr = entry
    return getattr(importlib.import_module(module), attr)


def wire_task(task: tuple) -> dict:
    """Serialize one engine pool task tuple for the work plane."""
    fn, params, key, cache_spec, obs_on, label, policy_doc, plan_doc = task
    return {
        "fn": fn_name(fn),
        "params": params,
        "key": key,
        "cache": list(cache_spec) if cache_spec is not None else None,
        "obs": bool(obs_on),
        "label": label,
        "policy": policy_doc,
        "plan": plan_doc,
    }


def task_from_wire(doc: dict, obs_on: bool | None = None) -> tuple:
    """Rebuild the engine pool task tuple from its wire form."""
    cache = doc.get("cache")
    return (
        resolve_fn(doc["fn"]),
        doc["params"],
        doc["key"],
        (cache[0], cache[1]) if cache is not None else None,
        bool(doc.get("obs")) if obs_on is None else obs_on,
        doc["label"],
        doc.get("policy"),
        doc.get("plan"),
    )


def run_task_local(task: tuple) -> dict:
    """Execute one engine task tuple inline in the calling process.

    The structured-degradation path (no reachable workers): the same
    cached/retried :func:`~repro.runner.engine._pool_worker` body runs,
    but with ``obs_on`` forced off — the caller's live collectors already
    record everything — and the caller's active fault plan saved and
    restored around the worker body's fresh-plan-per-task install.
    """
    from .engine import _pool_worker

    fn, params, key, cache_spec, _obs, label, policy_doc, plan_doc = task
    previous = resilience.active_plan()
    try:
        return _pool_worker(
            (fn, params, key, cache_spec, False, label, policy_doc, plan_doc)
        )
    finally:
        if previous is not None:
            resilience.activate(previous)
        else:
            resilience.deactivate()


def run_wire_task_local(doc: dict) -> dict:
    """:func:`run_task_local` for a unit in its wire form."""
    return run_task_local(task_from_wire(doc))


@dataclass
class _Lease:
    """One outstanding lease: who holds which unit until when."""

    token: str
    idx: int
    epoch: int
    worker: str
    granted_at: float
    deadline: float


class LeaseCoordinator:
    """Thread-safe lease ledger for one batch of work units.

    The pure core of the fabric — no sockets, no threads of its own, an
    injectable ``clock`` — so the exactly-once requeue machinery is
    directly testable (including by hypothesis schedules) without a
    single real process or real second.

    Every state transition appends a ``(kind, doc)`` event —
    ``"leased"``, ``"lease_expired"``, ``"completed"``, ``"discarded"``
    — to an internal queue the owner drains from *one* thread
    (:meth:`drain_events`), which is how journal writes and ``on_result``
    callbacks stay off the HTTP handler threads.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        lease_timeout: float = 30.0,
        clock=time.monotonic,
        wait_hint: float = 0.05,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        self.policy = policy if policy is not None else RetryPolicy()
        self.lease_timeout = lease_timeout
        self.clock = clock
        self.wait_hint = wait_hint
        self.closing = False  # workers drain off once the fabric closes
        self.leases_granted = 0
        self.requeues = 0
        self.duplicates_discarded = 0
        self._lock = threading.Lock()
        self._batch = 0  # generation counter: one per load()
        self._tasks: list[dict] = []
        self._backlog: deque[int] = deque()
        self._attempts: dict[int, int] = {}  # idx -> dispatches granted
        self._epoch: dict[int, int] = {}  # idx -> current lease generation
        self._faults: dict[int, list[str]] = {}  # idx -> loss provenance
        self._leases: dict[str, _Lease] = {}  # token -> live lease
        self._results: dict[int, dict] = {}  # idx -> envelope, write-once
        self._events: deque[tuple[str, dict]] = deque()

    # -- batch lifecycle -----------------------------------------------

    def load(self, task_docs: list[dict]) -> None:
        """Install a fresh batch; resets all per-batch state."""
        with self._lock:
            if self._leases:
                raise RuntimeError("cannot load a batch over live leases")
            self._batch += 1
            self._tasks = list(task_docs)
            self._backlog = deque(range(len(self._tasks)))
            self._attempts = {i: 0 for i in range(len(self._tasks))}
            self._epoch = {i: 0 for i in range(len(self._tasks))}
            self._faults = {}
            self._results = {}
            self._events.clear()

    @property
    def done(self) -> bool:
        with self._lock:
            return len(self._results) == len(self._tasks)

    @property
    def leases_active(self) -> int:
        with self._lock:
            return len(self._leases)

    def results_in_order(self) -> list[dict]:
        with self._lock:
            if len(self._results) != len(self._tasks):
                raise RuntimeError("batch not complete")
            return [self._results[i] for i in range(len(self._tasks))]

    # -- the work-plane verbs (called from HTTP handler threads) -------

    def lease(self, worker: str) -> dict:
        """Grant the next pending unit, or tell the worker to wait/stop."""
        with self._lock:
            if self.closing:
                return {"done": True}
            if not self._backlog:
                return {"wait": self.wait_hint}
            idx = self._backlog.popleft()
            prior = self._attempts[idx]
            self._attempts[idx] = prior + 1
            self._epoch[idx] += 1
            epoch = self._epoch[idx]
            # Batch-scoped token: a zombie from a *previous* batch (its
            # unit finished without it; the owner moved on) can never
            # name — let alone pop — a live lease of the current one.
            token = f"L{self._batch}.{idx}.{epoch}"
            now = self.clock()
            self._leases[token] = _Lease(
                token=token,
                idx=idx,
                epoch=epoch,
                worker=worker,
                granted_at=now,
                deadline=now + self.lease_timeout,
            )
            self.leases_granted += 1
            doc = self._tasks[idx]
            self._events.append(
                (
                    "leased",
                    {
                        "idx": idx,
                        "key": doc["key"],
                        "label": doc["label"],
                        "worker": worker,
                        "epoch": epoch,
                    },
                )
            )
            return {
                "task": doc,
                "token": token,
                "epoch": epoch,
                "idx": idx,
                "batch": self._batch,
                "lease_timeout": self.lease_timeout,
                "prior_attempts": prior,
            }

    def renew(self, token: str, epoch: int) -> dict:
        """Extend a live lease's deadline (the worker heartbeat)."""
        with self._lock:
            lease = self._leases.get(token)
            if lease is None or lease.epoch != epoch:
                return {"ok": False, "reason": "expired"}
            if self.clock() > lease.deadline:
                return {"ok": False, "reason": "expired"}
            lease.deadline = self.clock() + self.lease_timeout
            return {"ok": True}

    def complete(self, token: str, epoch: int, idx: int, envelope: dict,
                 worker: str = "?", batch: int | None = None) -> dict:
        """Accept a finished unit — exactly once, by epoch.

        A completion lands iff it belongs to the *current* batch, carries
        the unit's *current* lease generation, and no result was written
        yet.  A zombie's late submission (its lease expired and the unit
        was re-leased, bumping the epoch — or the whole batch finished
        without it and a new one loaded) or a double submission is
        discarded, never journaled.
        """
        with self._lock:
            if batch is not None and batch != self._batch:
                # A straggler from an earlier batch: its (idx, epoch)
                # coordinates are meaningless against current state.
                self.duplicates_discarded += 1
                self._events.append(
                    ("discarded", {"idx": idx, "worker": worker,
                                   "epoch": epoch, "reason": "stale-batch"})
                )
                return {"accepted": False, "reason": "stale-batch"}
            lease = self._leases.pop(token, None)
            if (
                not isinstance(idx, int)
                or idx not in self._attempts
                or idx in self._results
                or epoch != self._epoch.get(idx)
            ):
                self.duplicates_discarded += 1
                reason = (
                    "duplicate"
                    if isinstance(idx, int) and idx in self._results
                    else "stale-epoch"
                )
                self._events.append(
                    ("discarded", {"idx": idx, "worker": worker,
                                   "epoch": epoch, "reason": reason})
                )
                return {"accepted": False, "reason": reason}
            # An expired-but-not-yet-re-leased unit is still completable
            # (the epoch has not moved): take the result and pull the
            # unit back off the backlog instead of re-executing it.
            if idx in self._backlog:
                self._backlog.remove(idx)
            age = self.clock() - lease.granted_at if lease is not None else None
            self._finish(idx, envelope, worker=worker, age=age)
            return {"accepted": True}

    # -- owner-side operations (run loop thread) -----------------------

    def expire(self) -> int:
        """Expire overdue leases; requeue or fail their units.

        Returns the number of leases expired.  A unit whose dispatch
        budget (``policy.max_attempts``) is exhausted degrades into the
        standard ``timed_out`` FAILED envelope — the same contract as a
        supervised worker that hangs on every dispatch.
        """
        now = self.clock()
        expired = 0
        with self._lock:
            for token in [
                t for t, l in self._leases.items() if now > l.deadline
            ]:
                lease = self._leases.pop(token)
                expired += 1
                idx = lease.idx
                if idx in self._results:
                    continue
                attempts = self._attempts[idx]
                faults = self._faults.setdefault(idx, [])
                faults.append(f"lease.expired@{attempts}")
                requeue = attempts < self.policy.max_attempts
                doc = self._tasks[idx]
                self._events.append(
                    (
                        "lease_expired",
                        {
                            "idx": idx,
                            "key": doc["key"],
                            "label": doc["label"],
                            "worker": lease.worker,
                            "epoch": lease.epoch,
                            "age": now - lease.granted_at,
                            "requeued": requeue,
                        },
                    )
                )
                if requeue:
                    self.requeues += 1
                    self._backlog.append(idx)
                    continue
                label = doc["label"]
                err = RuntimeError(
                    f"{label}: lease expired on all {attempts} dispatches "
                    f"(worker {lease.worker})"
                )
                outcome = JobOutcome(
                    label,
                    "timed_out",
                    attempts=attempts,
                    faults=list(faults),
                    error=str(err),
                    respawned=attempts,
                )
                self._finish(
                    idx,
                    {
                        "payload": failure_payload(err, "timed_out"),
                        "cached": False,
                        "wall": 0.0,
                        "outcome": outcome.as_dict(),
                        "cache_stats": {},
                    },
                    worker=lease.worker,
                    age=now - lease.granted_at,
                )
        return expired

    def seize_pending(self) -> list[tuple[int, dict]]:
        """Atomically take the whole backlog iff no lease is live.

        The local-degradation entry point: returns ``(idx, task_doc)``
        pairs now owned by the caller, or ``[]`` when workers still hold
        leases (their results may yet arrive).
        """
        with self._lock:
            if self._leases or not self._backlog:
                return []
            taken = [(idx, self._tasks[idx]) for idx in self._backlog]
            for idx, _ in taken:
                self._attempts[idx] += 1
            self._backlog.clear()
            return taken

    def deliver_local(self, idx: int, envelope: dict) -> None:
        """Record a locally executed (seized) unit's result."""
        with self._lock:
            if idx in self._results:
                return
            self._finish(idx, envelope, worker="local", age=None)

    def _finish(self, idx: int, envelope: dict, worker: str,
                age: float | None) -> None:
        """Write-once result slot + completion event (lock held)."""
        history = self._faults.get(idx)
        if history and envelope.get("outcome") is not None:
            outcome = envelope["outcome"]
            if not outcome.get("respawned"):
                outcome["respawned"] = len(history)
                outcome["faults"] = history + list(outcome.get("faults", []))
        self._results[idx] = envelope
        doc = self._tasks[idx]
        self._events.append(
            (
                "completed",
                {
                    "idx": idx,
                    "key": doc["key"],
                    "label": doc["label"],
                    "worker": worker,
                    "age": age,
                    "envelope": envelope,
                },
            )
        )

    def drain_events(self) -> list[tuple[str, dict]]:
        """Pop all queued events (the owner's single-threaded pump)."""
        out: list[tuple[str, dict]] = []
        with self._lock:
            while self._events:
                out.append(self._events.popleft())
        return out


class _WorkHandler(BaseHTTPRequestHandler):
    """The coordinator's work plane: lease / renew / complete."""

    protocol_version = "HTTP/1.1"
    timeout = 30.0

    def _json(self, status: int, doc: dict) -> None:
        body = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        if self.path != "/healthz":
            self._json(404, {"error": f"no route {self.path}"})
            return
        c = self.server.coordinator  # type: ignore[attr-defined]
        self._json(200, {"ok": True, "leases_active": c.leases_active})

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                doc = json.loads(raw) if raw else {}
            except ValueError:
                self._json(400, {"error": "request body is not valid JSON"})
                return
            if not isinstance(doc, dict):
                self._json(400, {"error": "request body must be an object"})
                return
            c = self.server.coordinator  # type: ignore[attr-defined]
            if self.path == "/v1/work/lease":
                out = c.lease(str(doc.get("worker", "?")))
            elif self.path == "/v1/work/renew":
                out = c.renew(str(doc.get("token", "")), doc.get("epoch"))
            elif self.path == "/v1/work/complete":
                out = c.complete(
                    str(doc.get("token", "")),
                    doc.get("epoch"),
                    doc.get("idx"),
                    doc.get("envelope") or {},
                    worker=str(doc.get("worker", "?")),
                    batch=doc.get("batch"),
                )
            else:
                self._json(404, {"error": f"no route {self.path}"})
                return
            self._json(200, out)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client vanished mid-response; its retry will re-ask
        except Exception as exc:  # never a hung socket
            try:
                self._json(500, {"error": str(exc),
                                 "error_type": type(exc).__name__})
            except OSError:
                pass

    def log_message(self, *args) -> None:  # silence per-request noise
        pass


class RemoteFabric:
    """Coordinator-side executor: leases units to remote workers.

    Drop-in for :class:`~repro.runner.supervisor.SupervisedPool` at the
    engine seam — :meth:`run` takes the same task tuples, returns
    envelopes in submission order, and fires ``on_result(idx, envelope)``
    per completion for crash-consistent journaling.  Unlike the pools it
    persists across batches (a tables run is many batches): the work
    plane binds lazily on first use and survives until :meth:`close`,
    with idle workers polling between batches.

    Parameters
    ----------
    workers:
        Local worker processes to spawn (``--remote-workers``); ``0``
        means external workers will connect (``python -m repro worker``).
    policy:
        :class:`RetryPolicy` budgeting lease dispatches per unit.
    lease_timeout:
        Seconds a lease lives without renewal before it expires and the
        unit requeues.
    worker_grace:
        Seconds without any lease grant (and none outstanding) before
        the fabric stops waiting for workers and runs the remaining
        units locally.
    """

    def __init__(
        self,
        workers: int = 0,
        policy: RetryPolicy | None = None,
        lease_timeout: float = 30.0,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.02,
        worker_grace: float = 5.0,
        worker_args: tuple[str, ...] = (),
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.policy = policy if policy is not None else RetryPolicy()
        self.coordinator = LeaseCoordinator(
            policy=self.policy, lease_timeout=lease_timeout
        )
        self.lease_timeout = lease_timeout
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.worker_grace = worker_grace
        self.worker_args = tuple(worker_args)
        self.journal = None  # assigned by the engine per batch
        self.fallback_units = 0
        self.respawns = 0
        self.lease_age_max = 0.0
        self._server: ThreadingHTTPServer | None = None
        self._server_thread: threading.Thread | None = None
        self._procs: list[subprocess.Popen] = []
        self._next_worker = 0
        self._closing = False
        self._last_grant = 0.0

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` of the work plane (starts the server if needed)."""
        self.ensure_started()
        assert self._server is not None
        return "%s:%d" % self._server.server_address[:2]

    def ensure_started(self) -> None:
        if self._server is not None:
            return
        if self._closing:
            raise RuntimeError("fabric is closed")
        server = ThreadingHTTPServer((self.host, self.port), _WorkHandler)
        server.daemon_threads = True
        server.coordinator = self.coordinator  # type: ignore[attr-defined]
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-work-plane",
            daemon=True,
        )
        thread.start()
        self._server = server
        self._server_thread = thread

    def _spawn_worker(self) -> subprocess.Popen:
        wid = self._next_worker
        self._next_worker += 1
        env = os.environ.copy()
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            self.address,
            "--id",
            f"spawn-{wid}",
            *self.worker_args,
        ]
        # Workers own stderr (fault chatter is diagnosable) but never
        # stdout: the coordinating CLI's output must stay byte-identical
        # to a single-host run's.
        proc = subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL)
        count("remote.workers_spawned")
        return proc

    def _ensure_workers(self) -> None:
        while len(self._procs) < self.workers:
            self._procs.append(self._spawn_worker())

    def _respawn_dead(self) -> None:
        """Replace spawned workers that died (SIGKILL chaos, crashes)."""
        if self._closing:
            return
        for i, proc in enumerate(self._procs):
            if proc.poll() is not None:
                self._procs[i] = self._spawn_worker()
                self.respawns += 1
                count("remote.workers_respawned")

    def close(self) -> None:
        """Stop workers (they drain off on the next poll) and the plane."""
        self._closing = True
        self.coordinator.closing = True
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            try:
                proc.wait(timeout=max(0.05, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self._procs = []
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
            self._server = None
            self._server_thread = None

    # -- the run loop ---------------------------------------------------

    def run(self, tasks: list[tuple], on_result=None) -> list[dict]:
        """Execute every task through the lease fabric.

        Same contract as ``SupervisedPool.run``: envelopes in submission
        order; ``on_result(idx, envelope)`` fires per completion, on this
        thread, as results land — the engine journals from it.
        """
        if not tasks:
            return []
        if self._closing:
            raise RuntimeError("fabric is closed")
        self.coordinator.load([wire_task(t) for t in tasks])
        self.ensure_started()
        self._ensure_workers()
        self._last_grant = time.monotonic()
        while not self.coordinator.done:
            self._pump(on_result)
            if self.coordinator.expire():
                continue  # expiry events pump on the next iteration
            self._respawn_dead()
            if self._maybe_fallback(on_result):
                continue
            time.sleep(self.poll_interval)
        self._pump(on_result)
        return self.coordinator.results_in_order()

    def _pump(self, on_result) -> None:
        """Drain coordinator events: journal, metrics, result callbacks.

        The only place journal appends and ``on_result`` happen — always
        the run-loop thread, never an HTTP handler thread.
        """
        for kind, doc in self.coordinator.drain_events():
            if kind == "leased":
                self._last_grant = time.monotonic()
                count("remote.leases")
                if self.journal is not None:
                    self.journal.job_leased(
                        doc["key"], doc["label"], doc["worker"], doc["epoch"]
                    )
            elif kind == "lease_expired":
                count("remote.lease_expired")
                if doc["requeued"]:
                    count("remote.requeues")
                self._observe_age(doc["age"])
                if self.journal is not None:
                    self.journal.job_lease_expired(
                        doc["key"],
                        doc["label"],
                        doc["worker"],
                        doc["epoch"],
                        doc["age"],
                        doc["requeued"],
                    )
            elif kind == "completed":
                count("remote.completed")
                if doc["age"] is not None:
                    self._observe_age(doc["age"])
                if on_result is not None:
                    on_result(doc["idx"], doc["envelope"])
            elif kind == "discarded":
                count("remote.duplicates_discarded")
        if observability.OBS.enabled:
            observability.OBS.metrics.gauge(
                "remote.leases_active", "work-plane leases outstanding"
            ).set(self.coordinator.leases_active)

    def _observe_age(self, age: float) -> None:
        self.lease_age_max = max(self.lease_age_max, age)
        if observability.OBS.enabled:
            observability.OBS.metrics.histogram(
                "remote.lease_age_seconds",
                "lease age at completion or expiry",
            ).observe(age)

    def _maybe_fallback(self, on_result) -> bool:
        """Run the backlog locally once workers have gone quiet."""
        if time.monotonic() - self._last_grant <= self.worker_grace:
            return False
        seized = self.coordinator.seize_pending()
        if not seized:
            return False
        count("remote.local_fallback", len(seized))
        for idx, doc in seized:
            envelope = run_wire_task_local(doc)
            self.coordinator.deliver_local(idx, envelope)
            self.fallback_units += 1
            self._pump(on_result)
        return True

    # -- reporting ------------------------------------------------------

    def stats_line(self) -> str:
        c = self.coordinator
        return (
            f"{c.leases_granted} leases granted, {c.requeues} requeued, "
            f"{c.duplicates_discarded} duplicates discarded, "
            f"{self.fallback_units} run locally "
            f"({self.workers} spawned workers, {self.respawns} respawned, "
            f"max lease age {self.lease_age_max:.2f}s)"
        )

    def publish_metrics(self) -> None:
        """Mirror fabric totals into the global metrics registry."""
        m = observability.OBS.metrics
        c = self.coordinator
        m.gauge("remote.leases_active", "work-plane leases outstanding").set(
            c.leases_active
        )
        m.gauge("remote.leases_granted", "lease grants this run").set(
            c.leases_granted
        )
        m.gauge("remote.requeues_total", "units requeued after expiry").set(
            c.requeues
        )
        m.gauge(
            "remote.duplicates_discarded_total",
            "zombie completions rejected by epoch",
        ).set(c.duplicates_discarded)
        m.gauge(
            "remote.local_fallback_units", "units degraded to local execution"
        ).set(self.fallback_units)
