"""Content-addressed on-disk result cache for the experiment engine.

Every cacheable computation is identified by a *stable* key: the SHA-256 of
a canonical JSON rendering of (kind, parameters, code version).  Parameters
always include the serialized DFG when a graph is involved, so two
workloads that happen to share a name but differ structurally can never
collide.  The code version is a digest of the ``repro`` package *sources*,
so any edit to the library silently invalidates every entry — a cache hit
is therefore always a replay of byte-identical code on byte-identical
input.

Entries are JSON envelopes ``{"key", "sha", "payload"}`` written atomically
(temp file + rename).  A corrupted entry — truncated file, undecodable
bytes, invalid JSON, key mismatch, or payload checksum mismatch — is
*quarantined and recomputed*, never returned: :meth:`ResultCache.get`
moves it into ``<root>/.quarantine/`` (for post-mortems) and reports a
miss.  The :mod:`~repro.runner.resilience` fault sites ``cache.read``
(corrupt the raw bytes before validation) and ``cache.write`` (crash
between the temp write and the rename) are threaded through here; both
hooks are single ``is None`` checks when no fault plan is active.

Sharding (``shards > 1``): entries are spread by key prefix across
``shard-XX/`` subdirectories so a server sustaining many concurrent
cache writers never funnels every store through one directory.  Reads
*fall back to the unsharded layout*: a cache directory populated before
``--shards`` was enabled keeps hitting — entries migrate to the sharded
layout only as they are rewritten, never by a bulk move.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..observability import count
from . import resilience

__all__ = [
    "CACHE_SCHEMA",
    "QUARANTINE_CAP",
    "QUARANTINE_DIR",
    "CacheStats",
    "NullCache",
    "ResultCache",
    "cache_key",
    "code_version",
    "default_cache_dir",
]

#: Bump to invalidate every existing cache entry on a format change.
CACHE_SCHEMA = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory (under the cache root) holding quarantined corrupt
#: entries.  The ``.corrupt`` suffix keeps them out of ``*.json`` globs,
#: so ``len(cache)`` and :meth:`ResultCache.clear` see live entries only.
QUARANTINE_DIR = ".quarantine"

#: Default cap on quarantined files kept for post-mortems; beyond it the
#: oldest are pruned so a rotting disk cannot grow the directory forever.
QUARANTINE_CAP = 100

_code_version: str | None = None


def code_version() -> str:
    """Digest of every ``.py`` source file in the ``repro`` package.

    Computed once per process.  Keying cache entries on this digest means
    *any* source change — not just version bumps — invalidates the cache,
    so stale results can never survive a refactor.
    """
    global _code_version
    if _code_version is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version = h.hexdigest()[:16]
    return _code_version


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the CWD."""
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else Path(".repro-cache")


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cache_key(kind: str, params: dict) -> str:
    """Stable content address of one computation.

    ``params`` must be a JSON-serializable dict fully determining the
    result (include the serialized DFG, never just a workload name).
    """
    doc = {
        "schema": CACHE_SCHEMA,
        "code": code_version(),
        "kind": kind,
        "params": params,
    }
    return hashlib.sha256(_canonical(doc).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/corruption counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    discarded: int = 0  # corrupt entries quarantined on read
    write_failures: int = 0  # stores that raised (crash-injected or real)
    quarantine_pruned: int = 0  # old quarantined files evicted by the cap

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "discarded": self.discarded,
            "write_failures": self.write_failures,
            "quarantine_pruned": self.quarantine_pruned,
        }

    def merge(self, delta: "CacheStats | dict") -> None:
        """Add another instance's counters (worker-process deltas)."""
        if isinstance(delta, CacheStats):
            delta = delta.as_dict()
        self.hits += delta.get("hits", 0)
        self.misses += delta.get("misses", 0)
        self.puts += delta.get("puts", 0)
        self.discarded += delta.get("discarded", 0)
        self.write_failures += delta.get("write_failures", 0)
        self.quarantine_pruned += delta.get("quarantine_pruned", 0)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed JSON store under one directory.

    Payloads must be JSON-serializable; they come back exactly as
    ``json.loads`` would render them (tuples become lists), so callers
    should treat payloads as plain JSON data.
    """

    def __init__(
        self,
        root: Path | str | None = None,
        quarantine_cap: int = QUARANTINE_CAP,
        shards: int = 0,
    ) -> None:
        if quarantine_cap < 0:
            raise ValueError(f"quarantine_cap must be >= 0, got {quarantine_cap}")
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        self.root = Path(root) if root is not None else default_cache_dir()
        self.quarantine_cap = quarantine_cap
        self.shards = shards
        self.stats = CacheStats()

    # -- paths ---------------------------------------------------------

    def _shard(self, key: str) -> int:
        """Shard index for ``key`` (a pure function of its hex prefix)."""
        return int(key[:8], 16) % self.shards

    def _legacy_path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small on big sweeps.
        return self.root / key[:2] / f"{key}.json"

    def _path(self, key: str) -> Path:
        """Where new entries land (the sharded layout when enabled)."""
        if self.shards > 1:
            return self.root / f"shard-{self._shard(key):02x}" / key[:2] / f"{key}.json"
        return self._legacy_path(key)

    def _candidate_paths(self, key: str) -> list[Path]:
        """Read locations for ``key``, preferred first.

        With sharding on, the unsharded (legacy) path is the fallback:
        pre-existing cache directories keep hitting after ``--shards``
        is enabled, and entries migrate only as they are rewritten.
        """
        path = self._path(key)
        if self.shards > 1:
            return [path, self._legacy_path(key)]
        return [path]

    # -- core API ------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Payload stored under ``key``; ``None`` (and a miss) otherwise.

        A corrupted entry — including one holding undecodable bytes — is
        quarantined and counted in ``stats.discarded``; it is never
        returned and never crashes the read.  With sharding enabled the
        unsharded layout is tried after the sharded one, so a corrupt
        sharded entry can still be served from its legacy twin.
        """
        for path in self._candidate_paths(key):
            raw: str | None
            try:
                raw = path.read_text()
            except FileNotFoundError:
                continue
            except OSError:
                continue
            except UnicodeDecodeError:
                # Binary garbage (torn write, disk rot): the entry exists
                # but cannot even be decoded — treat it as corrupt, not
                # fatal.
                raw = None
            if raw is not None:
                raw = resilience.corrupt_point(key, raw)
            try:
                if raw is None:
                    raise ValueError("undecodable entry")
                doc = json.loads(raw)
                if not isinstance(doc, dict):
                    raise ValueError("malformed envelope")
                if doc["key"] != key:
                    raise ValueError("key mismatch")
                payload = doc["payload"]
                if not isinstance(payload, dict):
                    raise ValueError("malformed payload")
                sha = hashlib.sha256(_canonical(payload).encode()).hexdigest()
                if doc["sha"] != sha:
                    raise ValueError("payload checksum mismatch")
            except (ValueError, KeyError, TypeError):
                self.stats.discarded += 1
                count("cache.corrupt_discarded")
                self._quarantine(path, key)
                continue
            self.stats.hits += 1
            count("cache.hits")
            return payload
        self.stats.misses += 1
        count("cache.misses")
        return None

    def put(self, key: str, payload: dict) -> None:
        """Atomically store ``payload`` under ``key``.

        Crash-safe: the envelope lands in a temp file first and is moved
        over the final path with one atomic rename, so a reader can never
        observe a half-written entry — a writer dying mid-store (the
        ``cache.write`` fault site) leaves no live entry at all.
        """
        body = _canonical(payload)
        doc = {
            "key": key,
            "sha": hashlib.sha256(body.encode()).hexdigest(),
            "payload": payload,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
            resilience.fault_point("cache.write", key)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        count("cache.puts")

    def put_safe(self, key: str, payload: dict) -> bool:
        """:meth:`put` that degrades a failed store into a counter.

        The engine uses this: a result that cannot be persisted (full
        disk, injected writer crash) is still *returned* — the job
        succeeded — and merely recomputed next run.
        """
        try:
            self.put(key, payload)
            return True
        except Exception:
            self.stats.write_failures += 1
            count("cache.write_failures")
            return False

    def get_or_compute(self, key: str, fn) -> dict:
        """Cached payload for ``key``, computing and storing it on a miss.

        Storage is best-effort (:meth:`put_safe`): a store that fails
        never loses the freshly computed payload.
        """
        payload = self.get(key)
        if payload is None:
            payload = fn()
            self.put_safe(key, payload)
        return payload

    # -- maintenance ---------------------------------------------------

    def _quarantine(self, path: Path, key: str) -> None:
        """Move a corrupt entry to ``<root>/.quarantine/<key>.corrupt``.

        Keeping the bytes (instead of unlinking) preserves the evidence
        for post-mortems; either way the entry leaves the live cache.
        The directory is bounded by ``quarantine_cap``: beyond it the
        oldest files are pruned (``stats.quarantine_pruned``) so a run
        against a rotting disk cannot grow it without limit.
        """
        qdir = self.root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / f"{key}.corrupt")
            count("cache.quarantined")
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            return
        self._prune_quarantine()

    def _prune_quarantine(self) -> None:
        entries = self.quarantined_entries()
        for victim in entries[: max(0, len(entries) - self.quarantine_cap)]:
            try:
                victim.unlink()
            except OSError:
                continue
            self.stats.quarantine_pruned += 1
            count("cache.quarantined_pruned")

    def quarantined_entries(self) -> list[Path]:
        """Quarantined corrupt-entry files, oldest first (mtime, then name)."""
        qdir = self.root / QUARANTINE_DIR
        if not qdir.exists():
            return []

        def age(path: Path) -> tuple:
            try:
                return (path.stat().st_mtime, path.name)
            except OSError:
                return (0.0, path.name)

        return sorted(qdir.glob("*.corrupt"), key=age)

    def clear(self) -> int:
        """Delete every live entry; returns the number removed.

        Quarantined files are purged too but not counted — they were
        already removed from the cache when they were quarantined.
        """
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.quarantined_entries():
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))


class NullCache:
    """Cache interface that never stores anything (``--no-cache``)."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def get(self, key: str) -> dict | None:
        self.stats.misses += 1
        count("cache.misses")
        return None

    def put(self, key: str, payload: dict) -> None:
        pass

    def put_safe(self, key: str, payload: dict) -> bool:
        return True

    def get_or_compute(self, key: str, fn) -> dict:
        self.stats.misses += 1
        return fn()

    def clear(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0
