"""Job matrix for the experiment engine.

A :class:`Job` names one cell of the sweep matrix — a workload (or an
explicit serialized DFG), a transformation, an unfolding factor and a trip
count.  :func:`execute_job` is the process-pool worker: it rebuilds the
graph, applies the transformation, runs the resulting program on the VM,
verifies it against the original loop, and returns a plain-JSON payload
(so results cache and travel across process boundaries unchanged).

Transformations whose plain (non-CSR) programs carry trip-count
preconditions — a pipelined prologue needs ``n >= M_r``, an unfolded loop
is specialized per residue — are run at an *effective* trip count recorded
in the payload; CSR forms run at the requested trip count exactly.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from ..codegen.combined import retimed_unfolded_loop, unfold_retimed_loop
from ..codegen.original import original_loop
from ..codegen.pipelined import pipelined_loop
from ..codegen.unfolded import unfolded_loop
from ..core.codesize import size_pipelined, size_retime_unfold, size_unfold_retime
from ..core.combined_csr import csr_retimed_unfolded_loop, csr_unfold_retimed_loop
from ..core.csr import csr_pipelined_loop
from ..core.predicated import PER_COPY, PER_ITERATION
from ..core.unfolded_csr import csr_unfolded_loop
from ..core.verify import assert_equivalent
from ..graph.dfg import DFG, DFGError
from ..graph.serialize import from_json, to_json
from ..machine.vm import run_program
from ..observability import OBS, count, span
from ..optimal import minimal_code_size, optimal_cycle_period, optimal_initiation_interval
from ..retiming.optimal import minimize_cycle_period, retime_for_period
from ..schedule.modulo import modulo_schedule
from ..schedule.rotation import rotation_schedule
from ..unfolding.orders import retime_unfold, unfold_retime
from ..workloads.registry import get_workload
from .resilience import JobOutcome

__all__ = ["Job", "JobResult", "TRANSFORMS", "execute_job", "jobs_for_matrix"]

#: Transformation names accepted by :class:`Job`, in canonical order.
#: ``orders`` is the Theorem 4.4/4.5 comparison: both retiming+unfolding
#: orders at the same period, sizes and the ``S_{r,f} <= S_{f,r}`` check.
#: ``oracle`` pins the heuristic stack against the exact solvers of
#: :mod:`repro.optimal` (certified optimum, bounds, optimality gaps).
TRANSFORMS: tuple[str, ...] = (
    "original",
    "pipelined",
    "csr-pipelined",
    "unfolded",
    "csr-unfolded",
    "retime-unfold",
    "csr-retime-unfold",
    "csr-retime-unfold-periter",
    "unfold-retime",
    "csr-unfold-retime",
    "orders",
    "oracle",
)


@dataclass(frozen=True)
class Job:
    """One cell of the experiment matrix.

    Exactly one of ``workload`` (registry name) or ``graph_json``
    (serialized DFG) identifies the input graph; the cache key always uses
    the serialized graph, so equal names with different structure cannot
    collide.
    """

    transform: str
    workload: str | None = None
    graph_json: str | None = None
    factor: int = 1
    trip_count: int = 20
    verify: bool = True
    trace: bool = False
    #: Oracle search deadline in seconds (``"oracle"`` transform only):
    #: on expiry the oracle degrades to a bounded-gap certificate.
    oracle_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.transform not in TRANSFORMS:
            raise ValueError(
                f"unknown transform {self.transform!r}; one of {TRANSFORMS}"
            )
        if (self.workload is None) == (self.graph_json is None):
            raise ValueError("exactly one of workload / graph_json is required")

    def graph(self) -> DFG:
        """A fresh instance of the job's input graph."""
        if self.workload is not None:
            return get_workload(self.workload)
        return from_json(self.graph_json)

    def to_params(self) -> dict:
        """Canonical, fully-determining JSON parameters (the cache key)."""
        return {
            "graph": self.graph_json
            if self.graph_json is not None
            else to_json(self.graph(), indent=None),
            "transform": self.transform,
            "factor": self.factor,
            "trip_count": self.trip_count,
            "verify": self.verify,
            "trace": self.trace,
            "oracle_timeout": self.oracle_timeout,
        }

    @property
    def label(self) -> str:
        """Unique display name for this cell.

        Uniqueness within a run matters beyond readability: the
        resilience layer's fault-occurrence counters are keyed per
        ``(site, label)``, so two distinct jobs sharing a label would
        see partition-dependent fault sequences.  Explicit-graph jobs
        therefore use the serialized graph's own name, not a generic
        placeholder.
        """
        name = self.workload
        if name is None and self.graph_json is not None:
            try:
                name = json.loads(self.graph_json).get("name")
            except ValueError:
                name = None
        return f"{name or 'dfg'}/{self.transform}/f={self.factor}/n={self.trip_count}"


@dataclass
class JobResult:
    """One job's payload plus engine-side bookkeeping.

    ``outcome`` carries the resilience record (attempts, fault history,
    final status) for executed jobs; cache hits have none.
    """

    job: Job
    payload: dict
    cached: bool = False
    wall_time: float = 0.0
    outcome: JobOutcome | None = None

    @property
    def ok(self) -> bool:
        return self.payload.get("ok", False)

    @property
    def error(self) -> str | None:
        return self.payload.get("error")

    @property
    def status(self) -> str:
        """``ok`` | ``error`` (in-band) | ``failed`` / ``timed_out``
        (engine-level, after retry exhaustion) — the FAILED-cell contract
        reports use to distinguish bad results from broken execution."""
        if self.outcome is not None and self.outcome.status != "ok":
            return self.outcome.status
        return "ok" if self.ok else "error"

    @property
    def resumed(self) -> bool:
        """Rehydrated from a run journal (``--resume``), not re-executed."""
        return self.outcome is not None and self.outcome.resumed


def _program_for(job_graph: DFG, transform: str, f: int, n: int):
    """Build ``(program, effective_n, extras)`` for one transform."""
    g = job_graph
    extras: dict = {}
    if f < 1:
        raise DFGError(f"unfolding factor must be >= 1, got {f}")
    if transform == "original":
        return original_loop(g), n, extras
    if transform in ("pipelined", "csr-pipelined"):
        period, r = minimize_cycle_period(g)
        extras["period"] = period
        extras["registers"] = r.registers_needed()
        extras["max_retiming"] = r.max_value
        if transform == "csr-pipelined":
            return csr_pipelined_loop(g, r), n, extras
        return pipelined_loop(g, r), max(n, r.max_value), extras
    if transform == "unfolded":
        return unfolded_loop(g, f, residue=n % f), n, extras
    if transform == "csr-unfolded":
        return csr_unfolded_loop(g, f), n, extras
    if transform in ("retime-unfold", "csr-retime-unfold", "csr-retime-unfold-periter"):
        ru = retime_unfold(g, f)
        r = ru.retiming
        extras["period"] = ru.period
        extras["registers"] = r.registers_needed()
        extras["max_retiming"] = r.max_value
        if transform == "csr-retime-unfold":
            return csr_retimed_unfolded_loop(g, r, f, PER_COPY), n, extras
        if transform == "csr-retime-unfold-periter":
            return csr_retimed_unfolded_loop(g, r, f, PER_ITERATION), n, extras
        n_eff = max(n, r.max_value)
        leftover = (n_eff - r.max_value) % f
        return retimed_unfolded_loop(g, r, f, leftover), n_eff, extras
    if transform in ("unfold-retime", "csr-unfold-retime"):
        ur = unfold_retime(g, f)
        extras["period"] = ur.period
        extras["registers"] = ur.retiming.registers_needed()
        if transform == "csr-unfold-retime":
            return csr_unfold_retimed_loop(g, ur.retiming, f), n, extras
        program = unfold_retimed_loop(g, ur.retiming, f, residue=n % f)
        n_eff = n
        min_n = program.meta.get("min_n", 0)
        if n_eff < min_n:
            # Preserve the residue the program was specialized for.
            n_eff += f * ((min_n - n_eff + f - 1) // f)
        return program, n_eff, extras
    raise DFGError(f"unknown transform {transform!r}")  # pragma: no cover


def _orders_payload(g: DFG, f: int, n: int, verify: bool) -> dict:
    """Theorem 4.4/4.5 comparison payload: both orders at the same period."""
    ur = unfold_retime(g, f)
    ru = retime_unfold(g, f, period=ur.period)
    s_fr = size_unfold_retime(g, ur.retiming, f)
    s_rf = size_retime_unfold(g, ru.retiming, f)
    payload = {
        "period": ur.period,
        "size_unfold_retime": s_fr,
        "size_retime_unfold": s_rf,
        "inequality_holds": s_rf <= s_fr,
        "registers": ru.retiming.registers_needed(),
    }
    executed = disabled = 0
    if verify:
        for prog in (
            csr_retimed_unfolded_loop(g, ru.retiming, f),
            csr_unfold_retimed_loop(g, ur.retiming, f),
        ):
            res = assert_equivalent(g, prog, n)
            executed += res.executed
            disabled += res.disabled
        payload["equivalent"] = True
    payload["executed"] = executed
    payload["disabled"] = disabled
    return payload


def _oracle_payload(g: DFG, timeout: float | None) -> dict:
    """Ground-truth verification payload: the heuristic stack vs. the
    exact oracle (:mod:`repro.optimal`) on one graph.

    Any heuristic result that escapes the oracle's *proven bounds* is a
    correctness bug and lands in ``violations`` (the sweep turns those
    into failures); results merely above an unproven lower bound are
    recorded as gaps, not violations — a timed-out oracle degrades the
    check, never fakes a pass.
    """
    opt = optimal_cycle_period(g, timeout=timeout)
    periods = {
        m: minimize_cycle_period(g, method=m)[0]
        for m in ("reference", "shared", "incremental")
    }
    violations: list[str] = []
    if len(set(periods.values())) != 1:
        violations.append(f"minimize_cycle_period methods disagree: {periods}")
    for m, p in periods.items():
        if p < opt.optimum_lower:
            violations.append(
                f"method={m} period {p} beats the certified lower bound "
                f"{opt.optimum_lower}"
            )
        elif opt.proven and p != opt.period:
            violations.append(
                f"method={m} period {p} != proven optimum {opt.period}"
            )
    if opt.proven:
        # Both directions of the OPT retiming: feasible at the optimum,
        # infeasible strictly below it.
        if retime_for_period(g, opt.period) is None:
            violations.append(
                f"retime_for_period infeasible at the proven optimum {opt.period}"
            )
        if opt.period > 1 and retime_for_period(g, opt.period - 1) is not None:
            violations.append(
                f"retime_for_period feasible below the proven optimum {opt.period}"
            )
    rot = rotation_schedule(g)
    if rot.length < opt.optimum_lower:
        violations.append(
            f"rotation schedule length {rot.length} beats the certified "
            f"lower bound {opt.optimum_lower}"
        )
    oii = optimal_initiation_interval(g, timeout=timeout)
    ms = modulo_schedule(g)
    if ms.ii < oii.optimum_lower:
        violations.append(
            f"modulo schedule II {ms.ii} beats the certified lower bound "
            f"{oii.optimum_lower}"
        )
    size_opt, r_min = minimal_code_size(g, opt.period)
    _, r_heur = minimize_cycle_period(g)
    size_heur = size_pipelined(g, r_heur)
    if size_heur < size_opt:
        violations.append(
            f"heuristic pipelined size {size_heur} beats the proven "
            f"optimal size {size_opt} at period {opt.period}"
        )
    gap = periods["incremental"] - opt.optimum_lower
    count("oracle.graphs")
    if OBS.enabled:
        OBS.metrics.histogram(
            "oracle.gap", "heuristic period minus certified optimum lower bound"
        ).observe(gap)
    return {
        "period_optimal": opt.period,
        "optimum_lower": opt.optimum_lower,
        "proven": opt.proven,
        "probes": opt.probes,
        "periods": periods,
        "gap": gap,
        "rotation_length": rot.length,
        "rotation_gap": rot.length - opt.optimum_lower,
        "modulo_ii": ms.ii,
        "modulo_ii_optimal": oii.ii,
        "modulo_gap": ms.ii - oii.optimum_lower,
        "optimal_code_size": size_opt,
        "heuristic_code_size": size_heur,
        "min_max_retiming": r_min.max_value,
        "violations": violations,
        "bounds_ok": not violations,
    }


def execute_job(params: dict) -> dict:
    """Process-pool worker: run one job described by ``Job.to_params()``.

    Always returns a JSON payload; failures are reported in-band as
    ``{"ok": False, "error": ..., "error_type": ...}`` so one bad cell
    cannot take down a sweep.
    """
    start = time.perf_counter()
    transform = params["transform"]
    f = params["factor"]
    n = params["trip_count"]
    with span("job.execute", transform=transform, factor=f, n=n):
        payload = _execute_job_payload(params, transform, f, n)
    payload["compute_time"] = time.perf_counter() - start
    return payload


def _execute_job_payload(params: dict, transform: str, f: int, n: int) -> dict:
    try:
        g = from_json(params["graph"])
        if transform == "oracle":
            payload = _oracle_payload(g, params.get("oracle_timeout"))
        elif transform == "orders":
            payload = _orders_payload(g, f, n, params["verify"])
        else:
            program, n_eff, extras = _program_for(g, transform, f, n)
            payload = dict(extras)
            payload["effective_n"] = n_eff
            payload["code_size"] = program.code_size
            if params["verify"] and transform != "original":
                result = assert_equivalent(g, program, n_eff)
                payload["equivalent"] = True
            else:
                result = run_program(program, n_eff, trace=params["trace"])
            payload["executed"] = result.executed
            payload["disabled"] = result.disabled
            if result.trace is not None:
                payload["trace_len"] = len(result.trace)
        payload["ok"] = True
        payload["error"] = None
    except DFGError as exc:
        # EquivalenceError / MachineError / construction failures alike:
        # reported in-band, sweep continues.
        payload = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
        }
    return payload


def jobs_for_matrix(
    workloads: list[str],
    transforms: list[str],
    factors: list[int],
    trip_counts: list[int],
    verify: bool = True,
) -> list[Job]:
    """The full cross product, skipping factor-irrelevant duplicates.

    Transforms that ignore the unfolding factor (``original``,
    ``pipelined``, ``csr-pipelined``, ``oracle``) appear once per trip
    count rather than once per factor.
    """
    factorless = {"original", "pipelined", "csr-pipelined", "oracle"}
    jobs: list[Job] = []
    for w in workloads:
        for t in transforms:
            fs = [1] if t in factorless else factors
            for f in fs:
                for n in trip_counts:
                    jobs.append(
                        Job(
                            transform=t,
                            workload=w,
                            factor=f,
                            trip_count=n,
                            verify=verify,
                        )
                    )
    return jobs
