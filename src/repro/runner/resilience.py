"""Fault injection and recovery for the experiment engine.

The engine assumes a well-behaved world: workers that never crash, cache
entries that never rot, jobs that always terminate.  This module supplies
both halves of the resilience story:

* **injection** — a deterministic, seedable :class:`FaultPlan` that fires
  worker exceptions, timeouts and cache corruption at *named sites*
  (:data:`FAULT_SITES`), activated via ``$REPRO_FAULT_PLAN`` or the
  ``--fault-plan`` CLI flag.  When no plan is active every hook is a
  single ``is None`` check, mirroring the observability guard pattern —
  the hot paths stay hot;
* **recovery** — :func:`run_attempts`, the per-job retry loop with capped
  exponential backoff and an optional per-attempt deadline
  (:class:`RetryPolicy`).  Every executed unit of work yields a
  :class:`JobOutcome` (final status, attempts used, fault history) that
  the engine aggregates into ``--stats`` and the ``jobs.retried`` /
  ``jobs.timed_out`` / ``jobs.failed`` metrics.

A job whose retries are exhausted never raises out of the engine: it
degrades into a structured *failure payload* (``{"ok": False, "failed":
True, "status": ...}``) so a sweep or table renders a ``FAILED`` cell and
the run exits non-zero with a summary, instead of dying on a traceback.

Determinism is the load-bearing property.  A fault decision is a pure
function of ``(plan seed, site, label, occurrence number)``, and the
occurrence counters are keyed per ``(site, label)`` — a job's label is
unique within a run, so serial and pool execution see identical fault
sequences, and a recovered run's payloads are bit-identical to a
fault-free run's.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "JobOutcome",
    "JobTimeoutError",
    "RetryPolicy",
    "activate",
    "activated",
    "active_plan",
    "corrupt_point",
    "deactivate",
    "failure_payload",
    "fault_point",
    "journal_write_point",
    "run_attempts",
    "worker_kill_point",
]

#: Environment variable holding a plan: a JSON file path or inline JSON.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The named injection sites threaded through the engine and the cache.
#:
#: ``job.start``     — raises :class:`FaultInjected` before a job attempt
#:                     executes (a worker crash);
#: ``job.timeout``   — raises :class:`JobTimeoutError` for an attempt (a
#:                     hung job whose deadline expired);
#: ``cache.read``    — corrupts a cache entry's raw bytes before
#:                     validation, exercising checksum + quarantine;
#: ``cache.write``   — raises mid-store, after the temp file is written
#:                     but before the atomic rename (a crashed writer);
#: ``journal.write`` — tears a run-journal record mid-append (a torn
#:                     final line) and raises, simulating the parent
#:                     process dying inside a journal write;
#: ``worker.kill``   — SIGKILLs the executing worker process itself at
#:                     task start, exercising the supervisor's
#:                     dead-worker detection/respawn/requeue path;
#: ``server.accept`` — raises while the request server is admitting a
#:                     request (a poisoned read / parse crash), which
#:                     must degrade to a structured error response;
#: ``server.respond``— raises while the server is delivering a computed
#:                     response, which must likewise produce a
#:                     structured error — never a hung connection;
#: ``remote.connect``  — raises before a resilient client opens a
#:                     connection to the coordinator (host unreachable,
#:                     refused connection), exercising retry/backoff and
#:                     the circuit breaker;
#: ``remote.send``     — raises before a request body is written (the
#:                     connection died mid-dial), always safe to retry;
#: ``remote.recv``     — raises after the server processed the request
#:                     but before the client read the response — the
#:                     dangerous half of a network fault, survivable only
#:                     because requests are idempotent (single-flight
#:                     dedup, lease epochs) so the retry is a join;
#: ``remote.lease_renew`` — fails a worker's heartbeat lease renewal,
#:                     so the coordinator expires the lease and requeues
#:                     while the worker keeps computing (a zombie whose
#:                     late completion must be discarded by epoch);
#: ``worker.partition``— a remote worker drops off the network right
#:                     after leasing a unit: heartbeats stop, the lease
#:                     expires and requeues, and the partitioned worker's
#:                     eventual completion arrives with a stale epoch.
FAULT_SITES: tuple[str, ...] = (
    "job.start",
    "job.timeout",
    "cache.read",
    "cache.write",
    "journal.write",
    "worker.kill",
    "server.accept",
    "server.respond",
    "remote.connect",
    "remote.send",
    "remote.recv",
    "remote.lease_renew",
    "worker.partition",
)


class FaultInjected(Exception):
    """An injected fault (worker crash / failed cache write)."""

    def __init__(self, site: str, label: str, occurrence: int) -> None:
        super().__init__(f"injected fault at {site} ({label}, occurrence {occurrence})")
        self.site = site
        self.label = label
        self.occurrence = occurrence


class JobTimeoutError(Exception):
    """A job attempt exceeded its deadline (real or injected)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule of a :class:`FaultPlan`.

    ``site`` names the injection point, ``match`` is an ``fnmatch``
    pattern on the unit-of-work label (a job label, or the cache key for
    cache sites).  The rule fires on the first ``times`` occurrences of a
    matching ``(site, label)`` pair — ``times=0`` means *every*
    occurrence (an unrecoverable fault) — gated by a ``prob`` coin that
    is a pure hash of ``(seed, site, label, occurrence)``, so decisions
    are reproducible across processes and retries.
    """

    site: str
    match: str = "*"
    times: int = 1
    prob: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; one of {FAULT_SITES}"
            )
        if self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "match": self.match,
            "times": self.times,
            "prob": self.prob,
        }


def _coin(seed: int, site: str, label: str, occurrence: int, prob: float) -> bool:
    """Deterministic Bernoulli draw; shared by every process in a run."""
    if prob >= 1.0:
        return True
    if prob <= 0.0:
        return False
    h = hashlib.sha256(f"{seed}|{site}|{label}|{occurrence}".encode()).digest()
    return int.from_bytes(h[:8], "big") / 2**64 < prob


class FaultPlan:
    """A deterministic schedule of faults to inject into one run.

    JSON format (file or inline)::

        {"seed": 7,
         "faults": [{"site": "job.start", "match": "*", "times": 1},
                    {"site": "cache.read", "match": "*", "times": 1}]}

    Occurrence counters are instance state: a fresh plan (one per run in
    the parent, one per task in a pool worker) starts every ``(site,
    label)`` pair at occurrence 1.  Labels are unique per unit of work,
    so the counters — and therefore the fault sequence — are identical
    however the work is partitioned across processes.
    """

    def __init__(self, faults: list[FaultSpec], seed: int = 0) -> None:
        self.faults = list(faults)
        self.seed = seed
        self._counts: dict[tuple[str, str], int] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(doc).__name__}")
        faults = [
            FaultSpec(
                site=f["site"],
                match=f.get("match", "*"),
                times=int(f.get("times", 1)),
                prob=float(f.get("prob", 1.0)),
            )
            for f in doc.get("faults", [])
        ]
        return cls(faults, seed=int(doc.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"invalid fault-plan JSON: {exc}") from None
        return cls.from_dict(doc)

    @classmethod
    def from_file(cls, path: Path | str) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Inline JSON (leading ``{``) or a path to a JSON file."""
        spec = spec.strip()
        if spec.startswith("{"):
            return cls.from_json(spec)
        return cls.from_file(spec)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        spec = os.environ.get(FAULT_PLAN_ENV)
        return cls.from_spec(spec) if spec else None

    def as_dict(self) -> dict:
        """Plain-JSON form; how a plan travels to pool workers."""
        return {"seed": self.seed, "faults": [f.as_dict() for f in self.faults]}

    # -- firing --------------------------------------------------------

    def fire(self, site: str, label: str) -> FaultSpec | None:
        """The spec injecting at this occurrence of ``(site, label)``, if any.

        Every call advances the occurrence counter, matched or not, so a
        spec's ``times`` budget counts *occurrences of the site*, e.g.
        retry attempts for ``job.start`` or reads for ``cache.read``.
        """
        key = (site, label)
        occurrence = self._counts.get(key, 0) + 1
        self._counts[key] = occurrence
        for spec in self.faults:
            if spec.site != site or not fnmatch(label, spec.match):
                continue
            if spec.times and occurrence > spec.times:
                continue
            if _coin(self.seed, site, label, occurrence, spec.prob):
                return spec
        return None

    def describe(self) -> str:
        rules = ", ".join(
            f"{f.site}[{f.match}]x{f.times or 'inf'}@p={f.prob:g}" for f in self.faults
        )
        return f"FaultPlan(seed={self.seed}, {rules or 'empty'})"


# ----------------------------------------------------------------------
# The process-global active plan (the zero-overhead guard).
# ----------------------------------------------------------------------

_PLAN: FaultPlan | None = None


def activate(plan: FaultPlan) -> None:
    """Install ``plan`` as this process's active fault plan."""
    global _PLAN
    _PLAN = plan


def deactivate() -> None:
    """Remove the active plan; every hook returns to a no-op."""
    global _PLAN
    _PLAN = None


def active_plan() -> FaultPlan | None:
    return _PLAN


@contextmanager
def activated(plan: FaultPlan):
    """Scope a plan to a ``with`` block (test convenience)."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def fault_point(site: str, label: str) -> None:
    """Raising injection hook for ``job.start`` / ``job.timeout`` /
    ``cache.write``.  One ``is None`` check when no plan is active."""
    if _PLAN is None:
        return
    spec = _PLAN.fire(site, label)
    if spec is None:
        return
    occurrence = _PLAN._counts[(site, label)]
    if site == "job.timeout":
        raise JobTimeoutError(
            f"injected timeout at {site} ({label}, occurrence {occurrence})"
        )
    raise FaultInjected(site, label, occurrence)


def journal_write_point(label: str) -> int | None:
    """Injection hook for ``journal.write``.

    Returns the firing occurrence number when the site fires (the
    journal then simulates a torn write: a truncated record followed by
    a :class:`FaultInjected` crash), else ``None``.  The decision —
    never the crash — happens here so :class:`~repro.runner.journal.RunJournal`
    controls exactly which bytes hit the disk first.
    """
    if _PLAN is None:
        return None
    if _PLAN.fire("journal.write", label) is None:
        return None
    return _PLAN._counts[("journal.write", label)]


def worker_kill_point(label: str, prior_attempts: int = 0) -> None:
    """Injection hook for ``worker.kill``: SIGKILL the calling process.

    Called by supervised pool workers at task start.  ``prior_attempts``
    is how many times this task was dispatched before (a respawned
    worker re-executing a requeued task): the occurrence counter is
    advanced past those draws first, so a ``times: 1`` spec kills the
    first dispatch only and the requeued execution survives — the same
    fresh-plan-per-task determinism the engine relies on elsewhere.
    """
    if _PLAN is None:
        return
    for _ in range(prior_attempts):
        _PLAN.fire("worker.kill", label)
    if _PLAN.fire("worker.kill", label) is None:
        return
    os.kill(os.getpid(), signal.SIGKILL)


def corrupt_point(label: str, raw: str) -> str:
    """Corrupting injection hook for ``cache.read``.

    Returns ``raw`` unchanged when no plan is active or the site does not
    fire; otherwise a deterministic truncation that can never pass the
    envelope checksum, driving the quarantine path.
    """
    if _PLAN is None:
        return raw
    if _PLAN.fire("cache.read", label) is None:
        return raw
    return raw[: len(raw) // 2]


# ----------------------------------------------------------------------
# Recovery: retry policy, outcomes, the attempt loop.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/deadline knobs for one engine.

    ``backoff * 2**(attempt-1)`` seconds, capped at ``backoff_cap``, is
    slept between attempts.  ``timeout`` (seconds, ``None`` = off) is a
    per-attempt deadline: an attempt that finishes late is discarded and
    retried, and exhaustion reports ``timed_out`` — the only way to bound
    a slow job without killing worker processes.  Injected ``job.timeout``
    faults trip the same path deterministically.
    """

    max_attempts: int = 3
    backoff: float = 0.02
    backoff_cap: float = 0.5
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep after a failed ``attempt`` (1-based)."""
        return min(self.backoff * 2 ** (attempt - 1), self.backoff_cap)

    def as_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff": self.backoff,
            "backoff_cap": self.backoff_cap,
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RetryPolicy":
        return cls(
            max_attempts=doc.get("max_attempts", 3),
            backoff=doc.get("backoff", 0.02),
            backoff_cap=doc.get("backoff_cap", 0.5),
            timeout=doc.get("timeout"),
        )


@dataclass
class JobOutcome:
    """Engine-level execution record for one unit of work.

    ``status`` describes the *execution*, not the result: a job that ran
    to completion and returned an in-band ``ok: False`` payload (a
    deterministic graph error) is still ``"ok"`` here — it executed and
    retrying it would reproduce the same answer.  ``"failed"`` and
    ``"timed_out"`` mean the attempts themselves crashed or overran.

    Provenance: ``resumed`` marks an outcome rehydrated from a run
    journal on ``--resume`` (the unit was *not* re-executed this run);
    ``respawned`` counts the supervised-pool workers that died or hung
    while holding this unit and were replaced before it completed.

    ``oracle_gap`` is set (by the engine, from the payload) only for
    ``"oracle"`` jobs that completed: the heuristic cycle period minus
    the oracle's certified lower bound — 0 means proven optimal.
    """

    label: str
    status: str  # "ok" | "failed" | "timed_out"
    attempts: int = 1
    faults: list[str] = field(default_factory=list)
    error: str | None = None
    resumed: bool = False
    respawned: int = 0
    oracle_gap: int | None = None

    @property
    def retried(self) -> int:
        """Extra attempts beyond the first."""
        return max(0, self.attempts - 1)

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "status": self.status,
            "attempts": self.attempts,
            "faults": list(self.faults),
            "error": self.error,
            "resumed": self.resumed,
            "respawned": self.respawned,
            "oracle_gap": self.oracle_gap,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "JobOutcome":
        return cls(
            label=doc["label"],
            status=doc["status"],
            attempts=doc.get("attempts", 1),
            faults=list(doc.get("faults", [])),
            error=doc.get("error"),
            resumed=bool(doc.get("resumed", False)),
            respawned=int(doc.get("respawned", 0)),
            oracle_gap=doc.get("oracle_gap"),
        )


def failure_payload(exc: BaseException, status: str) -> dict:
    """The structured FAILED cell a retry-exhausted job degrades into.

    ``"failed": True`` distinguishes an engine-level failure (crash /
    timeout after retries) from an in-band ``ok: False`` graph error, so
    reports can render ``FAILED`` vs. ``error`` cells distinctly.
    """
    return {
        "ok": False,
        "failed": True,
        "status": status,
        "error": str(exc),
        "error_type": type(exc).__name__,
    }


def run_attempts(
    fn,
    params: dict,
    label: str,
    policy: RetryPolicy | None = None,
) -> tuple[dict, JobOutcome, float]:
    """Execute one unit of work under the retry policy.

    Returns ``(payload, outcome, wall_time)``.  Never raises for job
    failures: crashes and timeouts are retried with capped exponential
    backoff, and exhaustion returns :func:`failure_payload` with a
    ``failed``/``timed_out`` outcome.  In-band failures (a payload with
    ``ok: False``) are *not* retried — they are deterministic results.
    ``compute_time`` self-reporting is honored as in the engine.
    """
    policy = policy if policy is not None else RetryPolicy()
    faults: list[str] = []
    last_error: BaseException = RuntimeError("no attempts ran")
    status = "failed"
    for attempt in range(1, policy.max_attempts + 1):
        try:
            fault_point("job.start", label)
            fault_point("job.timeout", label)
            start = time.perf_counter()
            payload = fn(params)
            wall = time.perf_counter() - start
            if policy.timeout is not None and wall > policy.timeout:
                raise JobTimeoutError(
                    f"{label}: attempt {attempt} took {wall:.3f}s "
                    f"(deadline {policy.timeout:.3f}s)"
                )
            t = payload.pop("compute_time", None)
            outcome = JobOutcome(label, "ok", attempts=attempt, faults=faults)
            return payload, outcome, (t if t is not None else wall)
        except JobTimeoutError as exc:
            status, last_error = "timed_out", exc
            faults.append(f"timeout@{attempt}")
        except FaultInjected as exc:
            status, last_error = "failed", exc
            faults.append(f"{exc.site}@{attempt}")
        except Exception as exc:
            status, last_error = "failed", exc
            faults.append(f"{type(exc).__name__}@{attempt}")
        if attempt < policy.max_attempts:
            d = policy.delay(attempt)
            if d > 0:
                time.sleep(d)
    outcome = JobOutcome(
        label,
        status,
        attempts=policy.max_attempts,
        faults=faults,
        error=str(last_error),
    )
    return failure_payload(last_error, status), outcome, 0.0
