"""Supervised process-pool execution: workers that can die and hang.

``concurrent.futures.ProcessPoolExecutor`` treats a dead worker as a
broken pool — one SIGKILL'd (OOM'd, segfaulted) process aborts the whole
campaign, and a hung worker wedges it forever.  :class:`SupervisedPool`
replaces it for runs that must survive both:

* every worker is a real :mod:`multiprocessing` process with a
  **heartbeat file** touched by a daemon thread every
  ``heartbeat_interval`` seconds;
* the parent's monitor loop detects **dead** workers (``is_alive()``
  false — SIGKILL, OOM, segfault) and **hung** workers (heartbeat older
  than ``heartbeat_timeout`` while holding a task — a C-level deadlock
  or a stopped process), kills the hung ones, **respawns** a
  replacement, and **requeues** the task the victim held;
* requeues are budgeted by the run's existing
  :class:`~repro.runner.resilience.RetryPolicy` (``max_attempts``
  dispatches per task): a poisoned unit that kills every worker it
  touches degrades into the standard FAILED payload instead of wedging
  the campaign, preserving ``completed + failed + timed_out ==
  submitted`` accounting.

Tasks are the same tuples :func:`repro.runner.engine._pool_worker`
executes, so cache I/O, retry-within-worker, fault plans and
observability deltas all behave exactly as in the plain pool; results
are returned in submission order, keeping supervised runs bit-identical
to serial ones.  The deterministic ``worker.kill`` fault site
(:func:`~repro.runner.resilience.worker_kill_point`) fires inside the
worker loop at task start, so chaos tests can SIGKILL precisely chosen
dispatches.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from . import resilience
from ..observability import count
from .resilience import JobOutcome, RetryPolicy, failure_payload

__all__ = ["SupervisedPool", "WorkerCrash", "sweep_orphan_heartbeats"]

#: Heartbeat directories are ``<tmp>/repro-supervisor-pid<PID>-<random>``:
#: the owning monitor's pid is embedded in the name so a later pool can
#: tell an orphan (owner dead — the monitor itself was SIGKILLed before
#: its ``rmtree`` ran) from a live sibling pool's directory.
_HEARTBEAT_PREFIX = "repro-supervisor-"


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM) — definitely alive
    return True


def sweep_orphan_heartbeats(root: Path | str | None = None) -> int:
    """Remove heartbeat dirs whose owning monitor process is gone.

    A SIGKILLed monitor never reaches the ``rmtree`` in its ``finally``
    block, leaking ``hb-*`` files in the temp dir forever.  Each pool
    run sweeps on start: any ``repro-supervisor-pid<PID>-*`` directory
    whose pid no longer exists is an orphan and is deleted.  Directories
    without a parseable pid (foreign or pre-pid-format) are left alone.
    Returns the number of directories removed.
    """
    root = Path(root if root is not None else tempfile.gettempdir())
    removed = 0
    for path in root.glob(_HEARTBEAT_PREFIX + "pid*"):
        if not path.is_dir():
            continue
        pid_text = path.name[len(_HEARTBEAT_PREFIX) + 3 :].split("-", 1)[0]
        if not pid_text.isdigit():
            continue
        if _pid_alive(int(pid_text)):
            continue
        shutil.rmtree(path, ignore_errors=True)
        removed += 1
    if removed:
        count("supervisor.orphans_swept", removed)
    return removed


class WorkerCrash(Exception):
    """A task's worker died or hung; used to build its FAILED payload."""


def _worker_main(
    worker_id: int,
    task_q,
    result_q,
    heartbeat_path: str,
    heartbeat_interval: float,
) -> None:
    """Worker process body: beat, take tasks, execute, report.

    The heartbeat is a daemon thread touching ``heartbeat_path`` — it
    stops only when the whole process stops (SIGKILL, SIGSTOP, C-level
    deadlock holding the GIL), which is precisely the condition the
    monitor needs to observe.
    """
    # Imported here (not at module top) to avoid an import cycle:
    # engine imports supervisor for the pool, supervisor needs engine's
    # worker body at execution time only.
    from .engine import _pool_worker

    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            try:
                Path(heartbeat_path).touch()
            except OSError:
                pass
            stop.wait(heartbeat_interval)

    threading.Thread(target=beat, daemon=True).start()
    while True:
        item = task_q.get()
        if item is None:
            break
        idx, task, prior_attempts = item
        label = task[5]
        plan_doc = task[7]
        # The kill site must see the task's fault plan before the worker
        # body installs it; a forked worker otherwise carries the
        # parent's (already-advanced) counters.
        if plan_doc is not None:
            resilience.activate(resilience.FaultPlan.from_dict(plan_doc))
        else:
            resilience.deactivate()
        resilience.worker_kill_point(label, prior_attempts)  # may not return
        try:
            envelope = _pool_worker(task)
        except BaseException as exc:  # defensive: report, never die silently
            envelope = {
                "payload": failure_payload(exc, "failed"),
                "cached": False,
                "wall": 0.0,
                "outcome": JobOutcome(
                    label, "failed", faults=[f"{type(exc).__name__}@worker"],
                    error=str(exc),
                ).as_dict(),
                "cache_stats": {},
            }
        result_q.put((worker_id, idx, envelope))
    stop.set()


@dataclass
class _Worker:
    """Parent-side bookkeeping for one worker process."""

    id: int
    proc: mp.Process
    task_q: object
    heartbeat: Path
    busy: tuple | None = None  # (idx, task, attempts) currently held


class SupervisedPool:
    """Self-healing process pool with heartbeat monitoring.

    Parameters
    ----------
    workers:
        Worker-process count.
    policy:
        The :class:`RetryPolicy` bounding dispatches per task
        (``max_attempts``); ``None`` uses the defaults.
    heartbeat_timeout:
        Seconds of heartbeat silence from a *busy* worker before it is
        declared hung, killed, and replaced.
    heartbeat_interval:
        Seconds between worker heartbeats (default: ``timeout / 5``,
        floored at 50 ms).
    """

    def __init__(
        self,
        workers: int,
        policy: RetryPolicy | None = None,
        heartbeat_timeout: float = 30.0,
        heartbeat_interval: float | None = None,
        poll_interval: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0, got {heartbeat_timeout}"
            )
        self.workers = workers
        self.policy = policy if policy is not None else RetryPolicy()
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, heartbeat_timeout / 5.0)
        )
        self.poll_interval = poll_interval
        self.respawned = 0  # workers replaced (dead + hung)
        self.requeued = 0  # task dispatches repeated after a worker loss
        self._ctx = mp.get_context()
        self._next_id = 0
        self._fault_history: dict[int, list[str]] = {}

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, hb_dir: Path, result_q) -> _Worker:
        wid = self._next_id
        self._next_id += 1
        hb = hb_dir / f"hb-{wid}"
        hb.touch()  # valid from birth: never stale before the first beat
        task_q = self._ctx.SimpleQueue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, task_q, result_q, str(hb), self.heartbeat_interval),
            daemon=True,
        )
        proc.start()
        return _Worker(id=wid, proc=proc, task_q=task_q, heartbeat=hb)

    def _kill(self, worker: _Worker) -> None:
        try:
            os.kill(worker.proc.pid, signal.SIGKILL)
        except (OSError, TypeError):
            pass
        worker.proc.join(timeout=5.0)

    def _stale(self, worker: _Worker) -> float | None:
        """Heartbeat age if beyond the timeout, else ``None``."""
        try:
            age = time.time() - worker.heartbeat.stat().st_mtime
        except OSError:
            return None  # file missing: worker not started yet; not stale
        return age if age > self.heartbeat_timeout else None

    # -- the run loop --------------------------------------------------

    def run(self, tasks: list[tuple], on_result=None) -> list[dict]:
        """Execute every task, surviving worker deaths and hangs.

        Returns envelopes in submission order.  ``on_result(idx,
        envelope)`` fires as each task completes (in completion order) —
        the engine journals from it, so a crash of the *parent* after a
        callback still finds that unit's record on disk.
        """
        results: list[dict | None] = [None] * len(tasks)
        if not tasks:
            return []
        backlog: list[tuple] = [
            (idx, task, 0) for idx, task in reversed(list(enumerate(tasks)))
        ]
        self._fault_history = {}  # idx -> worker-loss fault strings
        sweep_orphan_heartbeats()
        hb_dir = Path(
            tempfile.mkdtemp(prefix=f"{_HEARTBEAT_PREFIX}pid{os.getpid()}-")
        )
        result_q = self._ctx.SimpleQueue()
        fleet: list[_Worker] = []
        remaining = len(tasks)
        try:
            for _ in range(min(self.workers, len(tasks))):
                fleet.append(self._spawn(hb_dir, result_q))
            while remaining:
                self._dispatch(fleet, backlog)
                remaining -= self._drain(fleet, result_q, results, on_result)
                remaining -= self._police(
                    fleet, backlog, hb_dir, result_q, results, on_result
                )
        finally:
            for w in fleet:
                if w.proc.is_alive():
                    try:
                        w.task_q.put(None)
                    except (OSError, ValueError):
                        pass
            deadline = time.time() + 5.0
            for w in fleet:
                w.proc.join(timeout=max(0.0, deadline - time.time()))
                if w.proc.is_alive():
                    self._kill(w)
            shutil.rmtree(hb_dir, ignore_errors=True)
        return results  # type: ignore[return-value]

    def _dispatch(self, fleet: list[_Worker], backlog: list[tuple]) -> None:
        for w in fleet:
            if not backlog:
                return
            if w.busy is None and w.proc.is_alive():
                item = backlog.pop()
                w.busy = item
                w.task_q.put(item)

    def _drain(self, fleet, result_q, results, on_result) -> int:
        """Absorb every ready result; returns how many tasks finished."""
        finished = 0
        while True:
            try:
                # SimpleQueue has no timeout; poll the pipe instead.
                if not result_q._reader.poll(self.poll_interval):
                    return finished
                wid, idx, envelope = result_q.get()
            except (OSError, EOFError):
                return finished
            for w in fleet:
                if w.id == wid:
                    w.busy = None
                    break
            if results[idx] is not None:
                continue  # late duplicate from a worker we already wrote off
            history = self._fault_history.get(idx)
            if history and envelope.get("outcome") is not None:
                # The unit survived one or more worker losses before this
                # completion: stamp the provenance into its outcome.
                envelope["outcome"]["respawned"] = len(history)
                envelope["outcome"]["faults"] = (
                    history + list(envelope["outcome"].get("faults", []))
                )
            results[idx] = envelope
            finished += 1
            if on_result is not None:
                on_result(idx, envelope)

    def _police(
        self, fleet, backlog, hb_dir, result_q, results, on_result
    ) -> int:
        """Detect dead/hung workers; respawn and requeue.  Returns the
        number of tasks that exhausted their dispatch budget here."""
        finished = 0
        for i, w in enumerate(fleet):
            dead = not w.proc.is_alive()
            stale = None if dead else (self._stale(w) if w.busy else None)
            if not dead and stale is None:
                continue
            if not dead:
                self._kill(w)  # hung: SIGKILL works on stopped/deadlocked
            victim = w.busy
            self.respawned += 1
            fleet[i] = self._spawn(hb_dir, result_q)
            if victim is None:
                continue  # died between tasks: nothing to requeue
            idx, task, attempts = victim
            if results[idx] is not None:
                continue  # its result arrived before the death was seen
            attempts += 1
            label = task[5]
            kind = (
                f"worker.hung@{attempts}(stale {stale:.1f}s)"
                if stale is not None
                else f"worker.dead@{attempts}"
            )
            faults = self._fault_history.setdefault(idx, [])
            faults.append(kind)
            if attempts < self.policy.max_attempts:
                self.requeued += 1
                backlog.append((idx, task, attempts))
                continue
            status = "timed_out" if stale is not None else "failed"
            err = WorkerCrash(
                f"{label}: worker {'hung' if stale is not None else 'died'} "
                f"on all {attempts} dispatches"
            )
            outcome = JobOutcome(
                label,
                status,
                attempts=attempts,
                faults=list(faults),
                error=str(err),
                respawned=attempts,
            )
            envelope = {
                "payload": failure_payload(err, status),
                "cached": False,
                "wall": 0.0,
                "outcome": outcome.as_dict(),
                "cache_stats": {},
            }
            results[idx] = envelope
            finished += 1
            if on_result is not None:
                on_result(idx, envelope)
        return finished
