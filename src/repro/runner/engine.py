"""The parallel cached experiment engine.

One object — :class:`ExperimentEngine` — owns the three concerns every
sweep shares:

* **fan-out**: cache misses are executed across a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs > 1``) or inline
  (``jobs == 1``); submission order is preserved in the results either
  way, so parallel runs are bit-identical to serial ones;
* **memoization**: every unit of work is a module-level function applied
  to JSON parameters, content-addressed through
  :class:`~repro.runner.cache.ResultCache` (see :func:`cache_key`);
* **metrics**: per-call wall time, cache hit/miss counters and VM
  instruction counts are accumulated in :class:`EngineStats` and rendered
  by :meth:`ExperimentEngine.stats_summary` (the ``--stats`` CLI flag).

In parallel mode the *workers* perform the cache lookups and stores
(:func:`_pool_worker`), which parallelizes the disk I/O and keeps payload
bytes out of the parent except once per result.  Worker-process
:class:`~repro.runner.cache.CacheStats` would otherwise die with the
worker, so every result travels in an envelope carrying the worker's
hit/miss deltas — and, when observability is on, its serialized spans and
metric deltas — which the parent merges; ``--stats`` therefore reports
fleet-wide numbers identical to a serial run's.

Worker functions must be importable (module-level) and take a single JSON
dict — the pickling contract of ``multiprocessing``.  The engine never
caches in-band failures (``payload["ok"] is False``), so a crashed cell is
retried on the next run.

Resilience (:mod:`repro.runner.resilience`): every executed unit of work
goes through :func:`~repro.runner.resilience.run_attempts` — per-job retry
with capped exponential backoff, per-attempt deadlines, and deterministic
fault injection when a :class:`~repro.runner.resilience.FaultPlan` is
active.  A job whose retries are exhausted degrades into a structured
``FAILED`` payload instead of raising; :meth:`ExperimentEngine.failure_summary`
renders the post-run report and the ``jobs.retried`` / ``jobs.timed_out``
/ ``jobs.failed`` metrics surface through ``--stats``.

Crash consistency (:mod:`repro.runner.journal`): with a
:class:`~repro.runner.journal.RunJournal` attached, every unit's
submission and completion is an fsync'd write-ahead record, completed
units rehydrate on ``--resume`` instead of re-executing, and parallel
completions are journaled as they land.  Supervised mode
(:mod:`repro.runner.supervisor`) swaps the ``ProcessPoolExecutor`` for a
self-healing pool whose dead or hung workers are detected by heartbeat,
respawned, and their jobs requeued under the same
:class:`~repro.runner.resilience.RetryPolicy`.  Both layers are
off-by-default ``is None`` guards — an unjournaled, unsupervised run
executes the exact code it always did.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from .. import observability
from ..observability import count, span
from . import resilience
from .cache import NullCache, ResultCache, cache_key
from .jobs import Job, JobResult, execute_job
from .resilience import FaultPlan, JobOutcome, RetryPolicy, run_attempts

__all__ = ["EngineStats", "ExperimentEngine", "WorkUnit", "default_engine"]


def _pool_worker(task: tuple) -> dict:
    """Process-pool entry point: cached execution of one unit of work.

    ``task`` is ``(fn, params, key, cache_spec, obs_on, label, policy,
    plan)`` where ``cache_spec`` is ``(root, shards)`` or ``None``.  The
    worker owns the cache lookup/store and the retry loop
    for its unit and returns an envelope::

        {"payload", "cached", "wall", "cache_stats", "outcome"?, "obs"?}

    ``cache_stats`` holds this call's hit/miss/put deltas (a fresh
    per-call :class:`ResultCache` starts at zero, so its stats *are* the
    delta); ``outcome`` is the executed unit's serialized
    :class:`JobOutcome`; ``obs`` carries serialized spans and metric
    deltas when the parent had observability enabled.
    """
    fn, params, key, cache_spec, obs_on, label, policy_doc, plan_doc = task
    if obs_on:
        # A forked worker inherits the parent's collectors wholesale —
        # including the parent's still-open batch span and every metric
        # recorded before the fork.  Start from fresh collectors so the
        # exported state is exactly this call's delta.
        observability.OBS.reset()
        observability.enable()
    # Same inheritance hazard for the fault plan: a forked worker carries
    # the parent plan's occurrence counters.  Install a fresh instance
    # per task (counters are per-(site, label), and labels are unique, so
    # fresh-per-task equals one shared serial instance).
    if plan_doc is not None:
        resilience.activate(FaultPlan.from_dict(plan_doc))
    else:
        resilience.deactivate()
    policy = RetryPolicy.from_dict(policy_doc) if policy_doc else None
    if cache_spec is not None:
        cache_root, cache_shards = cache_spec
        cache: ResultCache | NullCache = ResultCache(cache_root, shards=cache_shards)
    else:
        cache = NullCache()
    payload = cache.get(key)
    if payload is not None:
        envelope = {"payload": payload, "cached": True, "wall": 0.0}
    else:
        payload, outcome, wall = run_attempts(fn, params, label, policy)
        if payload.get("ok", True):
            cache.put_safe(key, payload)
        envelope = {
            "payload": payload,
            "cached": False,
            "wall": wall,
            "outcome": outcome.as_dict(),
        }
    envelope["cache_stats"] = cache.stats.as_dict()
    if obs_on:
        envelope["obs"] = observability.export_state(reset=True)
    return envelope


@dataclass
class EngineStats:
    """Aggregated metrics for one engine instance."""

    calls: int = 0  # units of work requested
    computed: int = 0  # executed (cache misses)
    errors: int = 0  # in-band failures (payload["ok"] is False)
    retried: int = 0  # extra attempts beyond each unit's first
    timed_out: int = 0  # units whose attempts exhausted on deadlines
    failed: int = 0  # units whose attempts exhausted on crashes
    resumed: int = 0  # units rehydrated from a run journal (--resume)
    respawned: int = 0  # supervised-pool workers replaced after death/hang
    wall_time: float = 0.0  # sum of per-call compute time
    vm_executed: int = 0  # VM compute instructions executed
    vm_disabled: int = 0  # guarded computes whose predicate was off
    job_times: list[tuple[str, float]] = field(default_factory=list)
    outcomes: list[JobOutcome] = field(default_factory=list)

    def record(self, label: str, payload: dict, wall: float, cached: bool) -> None:
        self.calls += 1
        if not cached:
            self.computed += 1
            self.wall_time += wall
            self.job_times.append((label, wall))
        if payload.get("ok") is False:
            self.errors += 1
        self.vm_executed += payload.get("executed", 0) or 0
        self.vm_disabled += payload.get("disabled", 0) or 0

    @property
    def completed(self) -> int:
        """Units that ran to completion (including in-band errors)."""
        return self.calls - self.failed - self.timed_out

    def failed_outcomes(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.status != "ok"]


@dataclass(frozen=True)
class WorkUnit:
    """One heterogeneous unit of work for :meth:`ExperimentEngine.run_units`.

    ``fn`` must be an importable module-level function (the pickling
    contract of the process pool), ``params`` a JSON dict fully
    determining the result, ``kind`` the cache-key namespace.  Units with
    the same ``(kind, fn)`` batch into one engine matrix dispatch; the
    request server uses this to coalesce small mixed-kind requests into
    few pool fan-outs.
    """

    kind: str
    fn: object
    params: dict
    label: str


class ExperimentEngine:
    """Parallel, cached executor for experiment workloads.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` (default) runs inline, ``0``/``None``
        means one per CPU.
    cache:
        A :class:`ResultCache`, a directory path for one, or ``None`` for
        no caching (:class:`NullCache`).
    retry:
        A :class:`RetryPolicy`; ``None`` uses the defaults (3 attempts,
        20 ms base backoff, no deadline).  Fault injection is governed
        separately by the process-global plan
        (:func:`repro.runner.resilience.activate`), which the engine
        forwards to its pool workers.
    supervised:
        Run parallel work through the
        :class:`~repro.runner.supervisor.SupervisedPool` — real worker
        processes with heartbeats, dead/hung-worker detection, respawn
        and requeue — instead of ``ProcessPoolExecutor``.
    heartbeat_timeout:
        Seconds of heartbeat silence before a busy supervised worker is
        declared hung (the ``--worker-heartbeat-timeout`` flag).
    remote:
        A distributed executor — a
        :class:`~repro.runner.remote.RemoteFabric` (lease units to
        worker processes over the work plane) or a
        :class:`~repro.server.client.RemoteOffloadExecutor` (ship units
        to a ``repro serve`` coordinator) — honoring the
        ``run(tasks, on_result)`` submission-order contract.  Mutually
        exclusive with ``supervised``.  Call :meth:`close` when done:
        the executor persists across batches.

    Checkpointing: assigning a
    :class:`~repro.runner.journal.RunJournal` to ``engine.journal``
    makes every unit's submission and completion durable; loading a
    journal scan via :meth:`load_resume_state` rehydrates completed
    units so only pending ones re-execute.  Both default to off and cost
    a single ``is None``/empty-dict check when unused.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | NullCache | Path | str | None = None,
        retry: RetryPolicy | None = None,
        supervised: bool = False,
        heartbeat_timeout: float = 30.0,
        remote=None,
    ) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        if supervised and remote is not None:
            raise ValueError("supervised and remote execution are mutually exclusive")
        self.jobs = jobs
        if cache is None:
            self.cache: ResultCache | NullCache = NullCache()
        elif isinstance(cache, (ResultCache, NullCache)):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.retry = retry if retry is not None else RetryPolicy()
        self.supervised = supervised
        self.heartbeat_timeout = heartbeat_timeout
        self.remote = remote
        self.stats = EngineStats()
        self.journal = None  # a RunJournal when checkpointing is on
        self.resume_state: dict[str, dict] = {}  # key -> job.done/failed data

    # -- checkpoint/resume ---------------------------------------------

    def load_resume_state(self, scan) -> int:
        """Load a :class:`~repro.runner.journal.JournalScan`'s completed
        units; returns how many will be served without re-execution."""
        completed = scan.completed()
        self.resume_state.update(completed)
        return len(completed)

    def _rehydrate(self, label: str, rec: dict) -> tuple[dict, bool, float, JobOutcome | None]:
        """Serve one unit from its journal record, bit-identically."""
        payload = copy.deepcopy(rec["payload"])
        outcome = None
        if rec.get("outcome") is not None:
            outcome = JobOutcome.from_dict(rec["outcome"])
            outcome.resumed = True
            self._absorb_outcome(outcome)
        self.stats.resumed += 1
        count("run.resumed_jobs")
        self.stats.record(label, payload, 0.0, cached=True)
        return payload, True, 0.0, outcome

    def _journal_envelope(
        self, key: str, label: str, payload: dict, cached: bool, outcome_doc: dict | None
    ) -> None:
        """Durably record one completed unit (crash-consistency point)."""
        status = (outcome_doc or {}).get("status", "ok")
        if status == "ok":
            self.journal.job_done(
                key, label, payload, cached=cached, outcome=outcome_doc
            )
        else:
            self.journal.job_failed(key, label, payload, outcome=outcome_doc)

    # -- generic memoized fan-out --------------------------------------

    def map_cached(
        self,
        kind: str,
        fn,
        params_list: list[dict],
        labels: list[str] | None = None,
    ) -> list[dict]:
        """Apply module-level ``fn`` to every params dict, cached + parallel.

        Returns payloads in input order.  Cache hits are served without
        touching the pool; misses fan out across it and are stored on
        success.  ``fn`` may report its own wall time via a
        ``"compute_time"`` payload key (popped before caching); otherwise
        the engine's measurement is used.
        """
        return [p for p, _, _, _ in self._map_detailed(kind, fn, params_list, labels)]

    def _map_detailed(
        self,
        kind: str,
        fn,
        params_list: list[dict],
        labels: list[str] | None = None,
    ) -> list[tuple[dict, bool, float, JobOutcome | None]]:
        """:meth:`map_cached` returning ``(payload, cached, wall, outcome)``.

        ``outcome`` is ``None`` for cache hits — only executed units have
        an attempt history.
        """
        labels = labels or [f"{kind}#{i}" for i in range(len(params_list))]
        keys = [cache_key(kind, p) for p in params_list]
        with span("engine.map", kind=kind, calls=len(params_list)) as sp:
            slots: dict[int, tuple] = {}
            if self.resume_state:
                # Units with a journal completion record are rehydrated,
                # never re-executed — the checkpoint/resume contract.
                for i, (key, label) in enumerate(zip(keys, labels)):
                    rec = self.resume_state.get(key)
                    if rec is not None:
                        slots[i] = self._rehydrate(label, rec)
            pending = [i for i in range(len(keys)) if i not in slots]
            if self.journal is not None:
                # Write-ahead: a unit is journaled as submitted before it
                # can run, so a crash always classifies it correctly.
                for i in pending:
                    self.journal.job_submitted(keys[i], labels[i])
            if pending:
                sub = (
                    [params_list[i] for i in pending],
                    [keys[i] for i in pending],
                    [labels[i] for i in pending],
                )
                pool_wanted = (
                    self.jobs > 1 or self.supervised or self.remote is not None
                )
                if pool_wanted and len(pending) > 1:
                    ran = self._map_parallel(fn, *sub)
                else:
                    ran = self._map_serial(fn, *sub)
                for i, r in zip(pending, ran):
                    slots[i] = r
            out = [slots[i] for i in range(len(keys))]
            sp.set(computed=sum(1 for _, cached, _, _ in out if not cached))
        return out

    def _absorb_outcome(self, outcome: JobOutcome) -> None:
        """Fold one executed unit's attempt history into the run totals."""
        s = self.stats
        s.outcomes.append(outcome)
        if outcome.retried:
            s.retried += outcome.retried
            count("jobs.retried", outcome.retried)
        if outcome.status == "timed_out":
            s.timed_out += 1
            count("jobs.timed_out")
        elif outcome.status == "failed":
            s.failed += 1
            count("jobs.failed")

    def _map_serial(
        self, fn, params_list: list[dict], keys: list[str], labels: list[str]
    ) -> list[tuple[dict, bool, float, JobOutcome | None]]:
        """Inline execution: the parent owns cache lookups and stores."""
        out: list[tuple[dict, bool, float, JobOutcome | None]] = []
        for params, key, label in zip(params_list, keys, labels):
            payload = self.cache.get(key)
            if payload is not None:
                if self.journal is not None:
                    # Journal cache hits too: resume must not depend on
                    # the cache still existing (or being unchanged).
                    self._journal_envelope(key, label, payload, True, None)
                self.stats.record(label, payload, 0.0, cached=True)
                out.append((payload, True, 0.0, None))
                continue
            payload, outcome, wall = run_attempts(fn, params, label, self.retry)
            if payload.get("ok", True):
                self.cache.put_safe(key, payload)
            if self.journal is not None:
                self._journal_envelope(key, label, payload, False, outcome.as_dict())
            self._absorb_outcome(outcome)
            self.stats.record(label, payload, wall, cached=False)
            out.append((payload, False, wall, outcome))
        return out

    def _map_parallel(
        self, fn, params_list: list[dict], keys: list[str], labels: list[str]
    ) -> list[tuple[dict, bool, float, JobOutcome | None]]:
        """Pool execution: workers own cache I/O and ship deltas home."""
        root = getattr(self.cache, "root", None)
        cache_spec = (
            (str(root), getattr(self.cache, "shards", 0))
            if root is not None
            else None
        )
        obs_on = observability.OBS.enabled
        plan = resilience.active_plan()
        plan_doc = plan.as_dict() if plan is not None else None
        policy_doc = self.retry.as_dict()
        tasks = [
            (fn, params, key, cache_spec, obs_on, label, policy_doc, plan_doc)
            for params, key, label in zip(params_list, keys, labels)
        ]
        workers = max(1, min(self.jobs, len(tasks)))

        def journal_result(i: int, envelope: dict) -> None:
            self._journal_envelope(
                keys[i],
                labels[i],
                envelope["payload"],
                envelope["cached"],
                envelope.get("outcome"),
            )

        if self.remote is not None:
            # Distributed execution: the fabric/offload executor honors
            # the same submission-order + per-completion-callback
            # contract; journal appends stay on this thread.
            self.remote.journal = self.journal
            envelopes = self.remote.run(
                tasks,
                on_result=journal_result if self.journal is not None else None,
            )
        elif self.supervised:
            from .supervisor import SupervisedPool

            spool = SupervisedPool(
                workers,
                policy=self.retry,
                heartbeat_timeout=self.heartbeat_timeout,
            )
            envelopes = spool.run(
                tasks,
                on_result=journal_result if self.journal is not None else None,
            )
            if spool.respawned:
                self.stats.respawned += spool.respawned
                count("workers.respawned", spool.respawned)
        elif self.journal is None:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                envelopes = list(pool.map(_pool_worker, tasks))
        else:
            # Journaled runs record each completion the moment it lands,
            # not at the end of the batch — a crash between completions
            # loses at most the in-flight units.
            envelopes = [None] * len(tasks)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_pool_worker, t): i for i, t in enumerate(tasks)
                }
                for fut in as_completed(futures):
                    i = futures[fut]
                    envelopes[i] = fut.result()
                    journal_result(i, envelopes[i])
        out: list[tuple[dict, bool, float, JobOutcome | None]] = []
        for label, envelope in zip(labels, envelopes):
            # Fleet-wide accounting: merge the worker's per-call deltas.
            self.cache.stats.merge(envelope["cache_stats"])
            observability.absorb_state(envelope.get("obs"))
            payload = envelope["payload"]
            cached = envelope["cached"]
            wall = envelope["wall"]
            outcome = None
            if envelope.get("outcome") is not None:
                outcome = JobOutcome.from_dict(envelope["outcome"])
                self._absorb_outcome(outcome)
            self.stats.record(label, payload, wall, cached=cached)
            out.append((payload, cached, wall, outcome))
        return out

    def call_cached(self, kind: str, fn, params: dict, label: str | None = None) -> dict:
        """Single-call convenience wrapper around :meth:`map_cached`."""
        return self.map_cached(kind, fn, [params], [label or kind])[0]

    # -- heterogeneous batching ----------------------------------------

    def run_units(
        self, units: list[WorkUnit]
    ) -> list[tuple[dict, bool, float, JobOutcome | None]]:
        """Execute a mixed batch of :class:`WorkUnit`\\ s, results in
        input order.

        The batching entry point for the request server: units are
        grouped by ``(kind, fn)`` and each group goes through one
        :meth:`map_cached` fan-out, so a drained queue of heterogeneous
        small requests costs one engine dispatch per distinct kind
        instead of one per request.  Caching, retries, journaling and
        fault injection apply exactly as in :meth:`map_cached`.
        """
        groups: dict[tuple[str, object], list[int]] = {}
        for i, unit in enumerate(units):
            groups.setdefault((unit.kind, unit.fn), []).append(i)
        results: list = [None] * len(units)
        for (kind, fn), indices in groups.items():
            detailed = self._map_detailed(
                kind,
                fn,
                [units[i].params for i in indices],
                [units[i].label for i in indices],
            )
            for i, d in zip(indices, detailed):
                results[i] = d
        return results

    # -- job matrix ----------------------------------------------------

    def run_jobs(self, jobs: list[Job]) -> list[JobResult]:
        """Execute a job matrix; results in submission order."""
        params = [j.to_params() for j in jobs]
        labels = [j.label for j in jobs]
        detailed = self._map_detailed("job", execute_job, params, labels)
        results = [
            JobResult(
                job=job,
                payload=payload,
                cached=cached,
                wall_time=wall,
                outcome=outcome,
            )
            for job, (payload, cached, wall, outcome) in zip(jobs, detailed)
        ]
        for res in results:
            # Oracle jobs carry their optimality gap on the outcome record
            # too, so --outcomes-out artifacts expose it per job.
            if (
                res.job.transform == "oracle"
                and res.outcome is not None
                and res.ok
            ):
                res.outcome.oracle_gap = res.payload.get("gap")
        return results

    # -- reporting -----------------------------------------------------

    def stats_summary(self) -> str:
        """Human-readable metrics block (the ``--stats`` flag)."""
        c = self.cache.stats
        s = self.stats
        lines = [
            f"engine      : jobs={self.jobs}, "
            f"cache={'off' if isinstance(self.cache, NullCache) else 'on'}",
            f"work units  : {s.calls} requested, {s.computed} computed, "
            f"{s.calls - s.computed} from cache, {s.errors} failed",
            f"cache       : {c.hits} hits / {c.misses} misses "
            f"({100.0 * c.hit_rate:.1f}% hit rate), "
            f"{c.puts} stored, {c.discarded} corrupt quarantined, "
            f"{c.write_failures} write failures",
            f"resilience  : {s.retried} jobs.retried, "
            f"{s.timed_out} jobs.timed_out, {s.failed} jobs.failed "
            f"(max {self.retry.max_attempts} attempts/job)",
            f"checkpoint  : {s.resumed} jobs resumed, "
            f"{s.respawned} workers respawned, "
            f"journal {'on' if self.journal is not None else 'off'}"
            + (
                f" ({self.journal.records_written} records)"
                if self.journal is not None
                else ""
            ),
            f"compute time: {s.wall_time:.3f}s total",
            f"vm          : {s.vm_executed} computes executed, "
            f"{s.vm_disabled} disabled",
        ]
        if self.remote is not None:
            lines.append(f"remote      : {self.remote.stats_line()}")
        if s.job_times:
            slowest = max(s.job_times, key=lambda kv: kv[1])
            lines.append(f"slowest     : {slowest[0]} ({slowest[1]:.3f}s)")
        return "\n".join(lines)

    def failure_summary(self) -> str | None:
        """Structured report of units that exhausted their retries.

        ``None`` when everything completed — callers print this (and exit
        non-zero) only on degraded runs.
        """
        failed = self.stats.failed_outcomes()
        if not failed:
            return None
        lines = [
            f"{len(failed)} unit(s) FAILED after retries "
            f"(of {self.stats.calls} requested):"
        ]
        for o in failed[:20]:
            faults = ", ".join(o.faults) or "none"
            lines.append(
                f"  [{o.status}] {o.label}: {o.error} "
                f"(attempts={o.attempts}, faults: {faults})"
            )
        if len(failed) > 20:
            lines.append(f"  ... and {len(failed) - 20} more")
        return "\n".join(lines)

    def publish_metrics(self) -> None:
        """Mirror engine and cache totals into the global metrics registry.

        Idempotent (gauges, not counters) — safe to call once per report.
        The live ``cache.*`` counters accrue separately inside the cache
        hooks; these gauges carry the derived, fleet-wide aggregates that
        the ``--metrics-out`` JSON export promises (notably the hit rate).
        """
        m = observability.OBS.metrics
        c = self.cache.stats
        s = self.stats
        m.gauge("cache.hit_rate", "percent of lookups served from cache").set(
            100.0 * c.hit_rate
        )
        m.gauge("cache.lookups", "fleet-wide cache lookups").set(c.lookups)
        m.gauge("engine.calls", "units of work requested").set(s.calls)
        m.gauge("engine.computed", "cache misses executed").set(s.computed)
        m.gauge("engine.errors", "in-band failures").set(s.errors)
        m.gauge("engine.wall_time_seconds", "total compute wall time").set(
            s.wall_time
        )
        m.gauge("jobs.retried", "extra attempts beyond each unit's first").set(
            s.retried
        )
        m.gauge("jobs.timed_out", "units exhausted on deadlines").set(s.timed_out)
        m.gauge("jobs.failed", "units exhausted on crashes").set(s.failed)
        m.gauge("run.resumed_jobs", "units rehydrated from the run journal").set(
            s.resumed
        )
        m.gauge("workers.respawned", "supervised workers replaced").set(
            s.respawned
        )
        if self.remote is not None:
            self.remote.publish_metrics()

    def close(self) -> None:
        """Release persistent executor resources (the remote fabric)."""
        if self.remote is not None:
            self.remote.close()


def default_engine(
    jobs: int = 1,
    cache: bool = True,
    cache_dir: Path | str | None = None,
    retry: RetryPolicy | None = None,
    supervised: bool = False,
    heartbeat_timeout: float = 30.0,
    remote=None,
) -> ExperimentEngine:
    """Engine with the conventional CLI defaults (on-disk cache enabled)."""
    if not cache:
        return ExperimentEngine(
            jobs=jobs,
            cache=None,
            retry=retry,
            supervised=supervised,
            heartbeat_timeout=heartbeat_timeout,
            remote=remote,
        )
    return ExperimentEngine(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache_dir else ResultCache(),
        retry=retry,
        supervised=supervised,
        heartbeat_timeout=heartbeat_timeout,
        remote=remote,
    )
