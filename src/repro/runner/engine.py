"""The parallel cached experiment engine.

One object — :class:`ExperimentEngine` — owns the three concerns every
sweep shares:

* **fan-out**: cache misses are executed across a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs > 1``) or inline
  (``jobs == 1``); submission order is preserved in the results either
  way, so parallel runs are bit-identical to serial ones;
* **memoization**: every unit of work is a module-level function applied
  to JSON parameters, content-addressed through
  :class:`~repro.runner.cache.ResultCache` (see :func:`cache_key`);
* **metrics**: per-call wall time, cache hit/miss counters and VM
  instruction counts are accumulated in :class:`EngineStats` and rendered
  by :meth:`ExperimentEngine.stats_summary` (the ``--stats`` CLI flag).

Worker functions must be importable (module-level) and take a single JSON
dict — the pickling contract of ``multiprocessing``.  The engine never
caches in-band failures (``payload["ok"] is False``), so a crashed cell is
retried on the next run.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from .cache import NullCache, ResultCache, cache_key
from .jobs import Job, JobResult, execute_job

__all__ = ["EngineStats", "ExperimentEngine", "default_engine"]


@dataclass
class EngineStats:
    """Aggregated metrics for one engine instance."""

    calls: int = 0  # units of work requested
    computed: int = 0  # executed (cache misses)
    errors: int = 0  # in-band failures (payload["ok"] is False)
    wall_time: float = 0.0  # sum of per-call compute time
    vm_executed: int = 0  # VM compute instructions executed
    vm_disabled: int = 0  # guarded computes whose predicate was off
    job_times: list[tuple[str, float]] = field(default_factory=list)

    def record(self, label: str, payload: dict, wall: float, cached: bool) -> None:
        self.calls += 1
        if not cached:
            self.computed += 1
            self.wall_time += wall
            self.job_times.append((label, wall))
        if payload.get("ok") is False:
            self.errors += 1
        self.vm_executed += payload.get("executed", 0) or 0
        self.vm_disabled += payload.get("disabled", 0) or 0


class ExperimentEngine:
    """Parallel, cached executor for experiment workloads.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` (default) runs inline, ``0``/``None``
        means one per CPU.
    cache:
        A :class:`ResultCache`, a directory path for one, or ``None`` for
        no caching (:class:`NullCache`).
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | NullCache | Path | str | None = None,
    ) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        if cache is None:
            self.cache: ResultCache | NullCache = NullCache()
        elif isinstance(cache, (ResultCache, NullCache)):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.stats = EngineStats()

    # -- generic memoized fan-out --------------------------------------

    def map_cached(
        self,
        kind: str,
        fn,
        params_list: list[dict],
        labels: list[str] | None = None,
    ) -> list[dict]:
        """Apply module-level ``fn`` to every params dict, cached + parallel.

        Returns payloads in input order.  Cache hits are served without
        touching the pool; misses fan out across it and are stored on
        success.  ``fn`` may report its own wall time via a
        ``"compute_time"`` payload key (popped before caching); otherwise
        the engine's measurement is used.
        """
        return [p for p, _, _ in self._map_detailed(kind, fn, params_list, labels)]

    def _map_detailed(
        self,
        kind: str,
        fn,
        params_list: list[dict],
        labels: list[str] | None = None,
    ) -> list[tuple[dict, bool, float]]:
        """:meth:`map_cached` returning ``(payload, cached, wall_time)``."""
        labels = labels or [f"{kind}#{i}" for i in range(len(params_list))]
        keys = [cache_key(kind, p) for p in params_list]
        out: list[tuple[dict, bool, float] | None] = []
        for i, key in enumerate(keys):
            payload = self.cache.get(key)
            if payload is not None:
                self.stats.record(labels[i], payload, 0.0, cached=True)
                out.append((payload, True, 0.0))
            else:
                out.append(None)

        misses = [i for i, entry in enumerate(out) if entry is None]
        if misses:
            results = self._execute(fn, [params_list[i] for i in misses])
            for i, (payload, wall) in zip(misses, results):
                t = payload.pop("compute_time", None)
                wall = t if t is not None else wall
                if payload.get("ok", True):
                    self.cache.put(keys[i], payload)
                out[i] = (payload, False, wall)
                self.stats.record(labels[i], payload, wall, cached=False)
        return out  # type: ignore[return-value]

    def _execute(self, fn, params_list: list[dict]) -> list[tuple[dict, float]]:
        """Run ``fn`` over every params dict, preserving order."""
        if self.jobs <= 1 or len(params_list) <= 1:
            out = []
            for params in params_list:
                start = time.perf_counter()
                payload = fn(params)
                out.append((payload, time.perf_counter() - start))
            return out
        start = time.perf_counter()
        workers = min(self.jobs, len(params_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads = list(pool.map(fn, params_list))
        elapsed = time.perf_counter() - start
        # Fallback share if a worker did not self-report compute_time.
        share = elapsed / len(params_list)
        return [(p, share) for p in payloads]

    def call_cached(self, kind: str, fn, params: dict, label: str | None = None) -> dict:
        """Single-call convenience wrapper around :meth:`map_cached`."""
        return self.map_cached(kind, fn, [params], [label or kind])[0]

    # -- job matrix ----------------------------------------------------

    def run_jobs(self, jobs: list[Job]) -> list[JobResult]:
        """Execute a job matrix; results in submission order."""
        params = [j.to_params() for j in jobs]
        labels = [j.label for j in jobs]
        detailed = self._map_detailed("job", execute_job, params, labels)
        return [
            JobResult(job=job, payload=payload, cached=cached, wall_time=wall)
            for job, (payload, cached, wall) in zip(jobs, detailed)
        ]

    # -- reporting -----------------------------------------------------

    def stats_summary(self) -> str:
        """Human-readable metrics block (the ``--stats`` flag)."""
        c = self.cache.stats
        s = self.stats
        lines = [
            f"engine      : jobs={self.jobs}, "
            f"cache={'off' if isinstance(self.cache, NullCache) else 'on'}",
            f"work units  : {s.calls} requested, {s.computed} computed, "
            f"{s.calls - s.computed} from cache, {s.errors} failed",
            f"cache       : {c.hits} hits / {c.misses} misses "
            f"({100.0 * c.hit_rate:.1f}% hit rate), "
            f"{c.puts} stored, {c.discarded} corrupt discarded",
            f"compute time: {s.wall_time:.3f}s total",
            f"vm          : {s.vm_executed} computes executed, "
            f"{s.vm_disabled} disabled",
        ]
        if s.job_times:
            slowest = max(s.job_times, key=lambda kv: kv[1])
            lines.append(f"slowest     : {slowest[0]} ({slowest[1]:.3f}s)")
        return "\n".join(lines)


def default_engine(
    jobs: int = 1,
    cache: bool = True,
    cache_dir: Path | str | None = None,
) -> ExperimentEngine:
    """Engine with the conventional CLI defaults (on-disk cache enabled)."""
    if not cache:
        return ExperimentEngine(jobs=jobs, cache=None)
    return ExperimentEngine(
        jobs=jobs, cache=ResultCache(cache_dir) if cache_dir else ResultCache()
    )
